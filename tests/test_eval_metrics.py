"""Recall@K / NDCG@K correctness."""

import numpy as np
import pytest

from repro.eval import ndcg_at_k, rank_topk, recall_at_k


class TestRankTopK:
    def test_orders_descending(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        np.testing.assert_array_equal(rank_topk(scores, 3)[0], [1, 3, 2])

    def test_k_larger_than_items(self):
        scores = np.array([[0.1, 0.9]])
        out = rank_topk(scores, 10)
        np.testing.assert_array_equal(out[0], [1, 0])

    def test_batch_rows_independent(self):
        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = rank_topk(scores, 1)
        np.testing.assert_array_equal(out[:, 0], [0, 1])


class TestRecall:
    def test_perfect(self):
        topk = np.array([[0, 1, 2]])
        assert recall_at_k(topk, [np.array([0, 1])], 3) == 1.0

    def test_half(self):
        topk = np.array([[0, 9, 8]])
        assert recall_at_k(topk, [np.array([0, 1])], 3) == 0.5

    def test_skips_users_without_positives(self):
        topk = np.array([[0], [1]])
        out = recall_at_k(topk, [np.array([0]), np.array([], dtype=int)], 1)
        assert out == 1.0

    def test_only_first_k_counted(self):
        topk = np.array([[5, 6, 0]])
        assert recall_at_k(topk, [np.array([0])], 2) == 0.0

    def test_empty_everything(self):
        assert recall_at_k(np.zeros((1, 3), dtype=int), [np.array([], dtype=int)], 3) == 0.0


class TestNDCG:
    def test_hit_at_rank1(self):
        topk = np.array([[0, 1, 2]])
        assert ndcg_at_k(topk, [np.array([0])], 3) == 1.0

    def test_hit_at_rank2_discounted(self):
        topk = np.array([[9, 0, 2]])
        expected = (1 / np.log2(3)) / 1.0
        assert ndcg_at_k(topk, [np.array([0])], 3) == pytest.approx(expected)

    def test_perfect_multi_positive(self):
        topk = np.array([[0, 1, 9]])
        assert ndcg_at_k(topk, [np.array([0, 1])], 3) == pytest.approx(1.0)

    def test_idcg_truncated_at_k(self):
        # 5 positives but k=2: perfect top-2 still scores 1.
        topk = np.array([[0, 1]])
        assert ndcg_at_k(topk, [np.arange(5)], 2) == pytest.approx(1.0)

    def test_positionality(self):
        """NDCG (position-aware) must distinguish rankings Recall cannot."""
        good = np.array([[0, 9, 8]])
        bad = np.array([[9, 8, 0]])
        pos = [np.array([0])]
        assert recall_at_k(good, pos, 3) == recall_at_k(bad, pos, 3)
        assert ndcg_at_k(good, pos, 3) > ndcg_at_k(bad, pos, 3)
