"""ItemKNN baseline and taxonomy node labelling."""

import numpy as np
import pytest

from repro.eval import evaluate
from repro.models import ItemKNN, Random, create_model
from repro.taxonomy import Taxonomy, TaxonomyNode, label_taxonomy, node_label


class TestItemKNN:
    def test_beats_random(self, tiny_split):
        knn = ItemKNN(tiny_split.train).fit()
        rnd = Random(tiny_split.train).fit()
        assert (
            evaluate(knn, tiny_split, on="test").mean()
            > evaluate(rnd, tiny_split, on="test").mean()
        )

    def test_similar_items_score_high(self, tiny_split):
        knn = ItemKNN(tiny_split.train).fit()
        # A user's score for an item they interacted with should typically
        # be positive (similar to their own history).
        user_items = tiny_split.train.items_of_user()
        u = next(u for u in range(tiny_split.train.n_users) if len(user_items[u]) >= 3)
        scores = knn.score_users(np.array([u]))[0]
        assert scores.max() > 0

    def test_diagonal_not_self_matched(self, tiny_split):
        knn = ItemKNN(tiny_split.train).fit()
        assert np.diagonal(knn._sim).max() == 0.0

    def test_topk_sparsification(self, tiny_split):
        knn = ItemKNN(tiny_split.train, k_neighbors=5).fit()
        nonzero_per_row = (knn._sim > 0).sum(axis=1)
        assert nonzero_per_row.max() <= 5

    def test_lazy_fit_on_score(self, tiny_split):
        knn = ItemKNN(tiny_split.train)
        scores = knn.score_users(np.array([0]))
        assert np.isfinite(scores).all()

    def test_registered(self, tiny_split):
        assert isinstance(create_model("ItemKNN", tiny_split.train), ItemKNN)


class TestNodeLabeling:
    def make_taxo(self):
        child = TaxonomyNode(
            members=np.array([1, 2]), scores=np.array([0.9, 0.4]), level=1
        )
        root = TaxonomyNode(
            members=np.arange(3),
            general_tags=np.array([0]),
            scores=np.array([0.2, 0.9, 0.4]),
            level=0,
            children=[child],
        )
        return Taxonomy(root, n_tags=3)

    def test_general_tag_preferred(self):
        taxo = self.make_taxo()
        assert node_label(taxo.root, tag_names=["food", "sushi", "ramen"]) == "food"

    def test_highest_scoring_member_otherwise(self):
        taxo = self.make_taxo()
        child = taxo.root.children[0]
        assert node_label(child, tag_names=["food", "sushi", "ramen"]) == "sushi"

    def test_numeric_fallback_without_names(self):
        taxo = self.make_taxo()
        assert node_label(taxo.root) == "tag_0"

    def test_empty_node(self):
        node = TaxonomyNode(members=np.array([], dtype=int))
        assert node_label(node) == "(empty)"

    def test_label_taxonomy_rows(self):
        taxo = self.make_taxo()
        rows = label_taxonomy(taxo, tag_names=["food", "sushi", "ramen"])
        assert rows[0] == (0, "food", 3)
        assert rows[1] == (1, "sushi", 2)

    def test_scores_recomputed_from_psi(self):
        node = TaxonomyNode(members=np.array([0, 1]), scores=np.array([]))
        item_tags = np.array([[1, 0], [1, 0], [1, 1]], dtype=float)
        label = node_label(node, item_tags=item_tags, tag_names=["a", "b"])
        assert label in ("a", "b")
