"""Experiment runner: grid sweeps, per-cell run dirs, merged tables."""

import json

import pytest

from repro.train import cell_dir_name, comparison_table, run_experiment, validate_run_result

GRID = dict(scale=0.08, epochs=2)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    out = tmp_path_factory.mktemp("exp") / "sweep"
    return run_experiment(["BPRMF", "CML"], ["ciao"], [0, 1], out, **GRID)


class TestSweep:
    def test_one_valid_run_dir_per_cell(self, sweep):
        assert len(sweep.results) == 4
        for model in ("BPRMF", "CML"):
            for seed in (0, 1):
                cell = sweep.out_dir / cell_dir_name(model, "ciao", seed)
                doc = json.loads((cell / "result.json").read_text())
                assert validate_run_result(doc) == []
                assert doc["model"] == model
                assert doc["seed"] == seed
                assert (cell / "history.jsonl").exists()
                assert (cell / "config.json").exists()

    def test_merged_artifacts(self, sweep):
        doc = json.loads((sweep.out_dir / "experiment.json").read_text())
        assert doc["schema"] == "repro.experiment/v1"
        assert doc["grid"]["models"] == ["BPRMF", "CML"]
        assert doc["grid"]["seeds"] == [0, 1]
        assert len(doc["results"]) == 4
        assert sorted(doc["runs"]) == sorted(
            cell_dir_name(m, "ciao", s) for m in ("BPRMF", "CML") for s in (0, 1)
        )
        table = (sweep.out_dir / "comparison.txt").read_text()
        assert table.rstrip("\n") == sweep.table

    def test_comparison_table_contents(self, sweep):
        assert "BPRMF" in sweep.table and "CML" in sweep.table
        assert "Recall@10" in sweep.table
        assert "Aggregated over seeds" in sweep.table
        # One row per cell in the merged table section.
        merged_section = sweep.table.split("Aggregated")[0]
        assert sum(line.startswith(("BPRMF", "CML")) for line in merged_section.splitlines()) == 4

    def test_seeds_differ_within_model(self, sweep):
        by_cell = {(d["model"], d["seed"]): d["metrics"]["test"] for d in sweep.results}
        assert by_cell[("CML", 0)] != by_cell[("CML", 1)]


class TestParallelSweep:
    def test_multiprocessing_matches_sequential(self, sweep, tmp_path):
        parallel = run_experiment(["BPRMF", "CML"], ["ciao"], [0, 1], tmp_path / "par", jobs=2, **GRID)
        seq = {(d["model"], d["seed"]): d["metrics"] for d in sweep.results}
        par = {(d["model"], d["seed"]): d["metrics"] for d in parallel.results}
        assert seq == par


class TestValidation:
    def test_unknown_model_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown models"):
            run_experiment(["Nothing"], ["ciao"], [0], tmp_path / "x", **GRID)

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown datasets"):
            run_experiment(["CML"], ["netflix"], [0], tmp_path / "x", **GRID)

    def test_empty_grid_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty"):
            run_experiment(["CML"], ["ciao"], [], tmp_path / "x", **GRID)


class TestComparisonTable:
    def test_renders_from_result_docs(self):
        def doc(model, seed, base):
            return {
                "model": model,
                "dataset": "ciao",
                "seed": seed,
                "best_epoch": None,
                "epochs_run": 2,
                "metrics": {
                    "test": {
                        "recall_at_10": base,
                        "recall_at_20": base + 0.1,
                        "ndcg_at_10": base,
                        "ndcg_at_20": base + 0.05,
                    }
                },
            }

        table = comparison_table([doc("A", 0, 0.1), doc("A", 1, 0.2), doc("B", 0, 0.3)])
        assert "A" in table and "B" in table
        assert "#Seeds" in table
