"""Encoder-level checks for the GCN-family and NeuMF models."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.models import AGCN, HGCF, NGCF, LightGCN, NeuMF, TrainConfig
from repro.models.graph import _scatter_sum

CFG = dict(dim=16, tag_dim=4, epochs=1, batch_size=256, seed=0)


class TestScatterSum:
    def test_values(self, rng):
        vals = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = _scatter_sum(vals, np.array([0, 0, 2]), 3)
        np.testing.assert_array_equal(out.data, [[4.0, 6.0], [0.0, 0.0], [5.0, 6.0]])

    def test_gradient(self, rng):
        vals = rng.normal(size=(4, 2))
        idx = np.array([1, 1, 0, 1])
        check_gradients(lambda v: (_scatter_sum(v, idx, 2) ** 2).sum(), [vals])


class TestEncoders:
    def test_ngcf_output_dim_is_concat_of_layers(self, tiny_split):
        m = NGCF(tiny_split.train, TrainConfig(n_layers=2, **CFG))
        zu, zv = m._encode()
        assert zu.data.shape[1] == m._layer_dim * 3  # layers 0..2

    def test_lightgcn_encode_shapes(self, tiny_split):
        m = LightGCN(tiny_split.train, TrainConfig(n_layers=2, **CFG))
        zu, zv = m._encode()
        assert zu.data.shape == (tiny_split.train.n_users, 16)
        assert zv.data.shape == (tiny_split.train.n_items, 16)

    def test_hgcf_encode_on_hyperboloid(self, tiny_split):
        m = HGCF(tiny_split.train, TrainConfig(n_layers=1, **CFG))
        hu, hv = m._encode()
        inner = m.manifold.inner_np(hu.data, hu.data)
        np.testing.assert_allclose(inner, -1.0, atol=1e-8)

    def test_agcn_items_carry_attribute_part(self, tiny_split):
        m = AGCN(tiny_split.train, TrainConfig(n_layers=0, **CFG))
        _, zv = m._encode()
        # With zero layers the item embedding is [free | attr-projection];
        # two items with identical tag rows share the attr block.
        tags = tiny_split.train.item_tags
        rows = {tuple(map(int, tags[v])) for v in range(tiny_split.train.n_items)}
        assert zv.data.shape[1] == 16

    def test_neumf_logits_shape(self, tiny_split):
        m = NeuMF(tiny_split.train, TrainConfig(**CFG))
        logits = m._logits(np.array([0, 1]), np.array([2, 3]))
        assert logits.shape == (2,)

    def test_gcn_losses_backprop_to_embeddings(self, tiny_split):
        for cls in (NGCF, LightGCN, HGCF):
            m = cls(tiny_split.train, TrainConfig(n_layers=1, **CFG))
            loss = m.loss_batch(np.array([0, 1]), np.array([0, 1]), np.array([[2], [3]]))
            loss.backward()
            grads = [p.grad for p in m.parameters() if p.grad is not None]
            assert grads, f"{cls.name}: no gradients reached any parameter"
