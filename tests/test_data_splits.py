"""Temporal 60/20/20 splitting (paper §V-A2)."""

import numpy as np
import pytest

from repro.data import InteractionDataset, SyntheticConfig, generate, temporal_split


@pytest.fixture(scope="module")
def dataset():
    return generate(SyntheticConfig(n_users=50, n_items=80, seed=11))


class TestTemporalSplit:
    def test_partitions_all_interactions(self, dataset):
        sp = temporal_split(dataset)
        total = sp.train.n_interactions + sp.valid.n_interactions + sp.test.n_interactions
        assert total == dataset.n_interactions

    def test_fractions_roughly_respected(self, dataset):
        sp = temporal_split(dataset)
        frac_train = sp.train.n_interactions / dataset.n_interactions
        assert 0.55 < frac_train < 0.7

    def test_train_precedes_test_per_user(self, dataset):
        sp = temporal_split(dataset)
        train_by_user = {}
        for u, t in zip(sp.train.user_ids, sp.train.timestamps):
            train_by_user[u] = max(train_by_user.get(u, -np.inf), t)
        for u, t in zip(sp.test.user_ids, sp.test.timestamps):
            assert t >= train_by_user[u]

    def test_valid_between_train_and_test(self, dataset):
        sp = temporal_split(dataset)
        for u in range(dataset.n_users):
            tr = sp.train.timestamps[sp.train.user_ids == u]
            va = sp.valid.timestamps[sp.valid.user_ids == u]
            te = sp.test.timestamps[sp.test.user_ids == u]
            if len(tr) and len(va):
                assert va.min() >= tr.max()
            if len(va) and len(te):
                assert te.min() >= va.max()

    def test_every_active_user_keeps_train_items(self, dataset):
        sp = temporal_split(dataset)
        active = np.unique(dataset.user_ids)
        train_users = set(sp.train.user_ids.tolist())
        assert set(active.tolist()) <= train_users

    def test_tiny_histories_go_to_train(self):
        ds = InteractionDataset(
            n_users=1,
            n_items=5,
            n_tags=1,
            user_ids=np.array([0, 0]),
            item_ids=np.array([0, 1]),
            timestamps=np.array([0.0, 1.0]),
            item_tags=np.zeros((5, 1)),
        )
        sp = temporal_split(ds)
        assert sp.train.n_interactions == 2
        assert sp.test.n_interactions == 0

    def test_invalid_fractions_rejected(self, dataset):
        with pytest.raises(ValueError):
            temporal_split(dataset, train_frac=0.8, valid_frac=0.3)
        with pytest.raises(ValueError):
            temporal_split(dataset, train_frac=1.2)

    def test_split_names(self, dataset):
        sp = temporal_split(dataset)
        assert sp.train.name.endswith("/train")
        assert sp.test.name.endswith("/test")
