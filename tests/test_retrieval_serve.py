"""Serving integration for ``--retrieval``: selection, provenance, swaps.

The retrieval kind rides the same rails as the compute backend: one
process-wide active id (flag > ``REPRO_RETRIEVAL`` > ``"exact"``), per
snapshot index builds inside the service, provenance in ``stats()``, and
survival across hot swaps and cache invalidation.  None of it may change
a response — that contract lives in ``test_retrieval_parity.py``; this
module locks the plumbing around it.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.retrieval as retrieval_mod
from repro.retrieval import (
    ENV_VAR,
    UnknownRetrievalError,
    available_retrieval,
    get_retrieval,
    set_retrieval,
    use_retrieval,
)
from repro.serve import RecommenderService, ShardedService, export_payload, load_artifact
from repro.serve.cli import _apply_retrieval

from tests.conftest import make_frozen_payload


@pytest.fixture(autouse=True)
def _reset_selection(monkeypatch):
    """Isolate the process-wide active retrieval id per test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.setattr(retrieval_mod, "_active", None)
    yield
    monkeypatch.setattr(retrieval_mod, "_active", None)


@pytest.fixture(scope="module")
def artifact(tiny_split, tmp_path_factory):
    payload = make_frozen_payload(
        "dot_bias",
        n_users=tiny_split.train.n_users,
        n_items=tiny_split.train.n_items,
        seed=4,
    )
    path = tmp_path_factory.mktemp("retrieval") / "dot_bias.npz"
    export_payload(
        path,
        score_fn="dot_bias",
        arrays=payload,
        train=tiny_split.train,
        model_name="DotBias",
        source="tests/test_retrieval_serve.py",
    )
    return load_artifact(path)


@pytest.fixture(scope="module")
def swap_artifact_v2(tiny_split, tmp_path_factory):
    payload = make_frozen_payload(
        "dot_bias",
        n_users=tiny_split.train.n_users,
        n_items=tiny_split.train.n_items,
        seed=5,
    )
    path = tmp_path_factory.mktemp("retrieval") / "dot_bias_v2.npz"
    export_payload(
        path,
        score_fn="dot_bias",
        arrays=payload,
        train=tiny_split.train,
        model_name="DotBiasV2",
        source="tests/test_retrieval_serve.py",
    )
    return load_artifact(path)


# ----------------------------------------------------------------------
# Process-wide selection: flag > env var > default, mirroring backends.


def test_default_is_exact_and_env_var_is_read_once(monkeypatch):
    assert get_retrieval() == "exact"
    # Resolved once: flipping the env var later must not change the pick.
    monkeypatch.setenv(ENV_VAR, "bucketed")
    assert get_retrieval() == "exact"


def test_env_var_selects_kind(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "blockwise")
    assert get_retrieval() == "blockwise"


def test_set_and_use_retrieval(monkeypatch):
    assert set_retrieval("bucketed") == "bucketed"
    assert get_retrieval() == "bucketed"
    with use_retrieval("blockwise") as active:
        assert active == "blockwise"
        assert get_retrieval() == "blockwise"
    assert get_retrieval() == "bucketed"


def test_unknown_kind_raises_typed(monkeypatch):
    with pytest.raises(UnknownRetrievalError) as excinfo:
        set_retrieval("faiss")
    assert excinfo.value.name == "faiss"
    assert set(excinfo.value.known) == set(available_retrieval())
    monkeypatch.setenv(ENV_VAR, "annoy")
    with pytest.raises(UnknownRetrievalError):
        get_retrieval()


def test_cli_apply_retrieval_exit_codes(capsys):
    assert _apply_retrieval(None) == 0
    assert _apply_retrieval("blockwise") == 0
    # activate_* exports the id so forked shard workers inherit it.
    import os

    assert os.environ[ENV_VAR] == "blockwise"
    assert _apply_retrieval("faiss") == 2
    assert "unknown retrieval index" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Service plumbing: resolution, provenance, swap/invalidate survival.


def test_service_resolves_active_kind_when_unspecified(artifact):
    set_retrieval("blockwise")
    service = RecommenderService(artifact)
    assert service.retrieval_kind == "blockwise"
    assert service.stats()["retrieval"]["index"] == "blockwise"


def test_explicit_kind_overrides_active(artifact):
    set_retrieval("bucketed")
    service = RecommenderService(artifact, retrieval="exact")
    assert service.retrieval_kind == "exact"
    prov = service.stats()["retrieval"]
    assert prov["index"] == "exact"
    assert prov["fallback"] is None


def test_retrieval_params_reach_the_index(artifact):
    service = RecommenderService(
        artifact, retrieval="bucketed", retrieval_params={"n_buckets": 5, "max_scan": 0.75}
    )
    prov = service.stats()["retrieval"]
    assert prov["params"] == {"n_buckets": 5, "max_scan": 0.75}
    assert prov["recall"]["recall"]  # measured at build time


def test_index_survives_hot_swap(artifact, swap_artifact_v2):
    service = RecommenderService(artifact, retrieval="blockwise")
    baseline = RecommenderService(swap_artifact_v2)
    old_index = service.retrieval_index
    service.swap_artifact(swap_artifact_v2)
    assert service.retrieval_index is not old_index
    assert service.retrieval_kind == "blockwise"
    for user in range(0, swap_artifact_v2.n_users, 9):
        items, _ = service.recommend(user, k=10)
        ref_items, _ = baseline.recommend(user, k=10)
        np.testing.assert_array_equal(items, ref_items)


def test_index_survives_invalidate(artifact):
    service = RecommenderService(artifact, retrieval="bucketed")
    before = service.recommend(3, k=10)
    old_index = service.retrieval_index
    service.invalidate()
    assert service.retrieval_index is not old_index
    after = service.recommend(3, k=10)
    np.testing.assert_array_equal(after[0], before[0])
    np.testing.assert_array_equal(after[1], before[1])


def test_recommend_batch_matches_single_calls(artifact):
    service = RecommenderService(artifact, retrieval="bucketed")
    users = [0, 7, 0, 13]
    batch = service.recommend_batch(users, k=8)
    for row, user in enumerate(users):
        items, scores = service.recommend(user, k=8)
        np.testing.assert_array_equal(batch[0][row], items)
        np.testing.assert_array_equal(batch[1][row], scores)


def test_sharded_service_carries_retrieval(artifact):
    flat = RecommenderService(artifact)
    sharded = ShardedService(artifact, n_shards=3, retrieval="blockwise")
    try:
        assert sharded.stats()["retrieval"]["index"] == "blockwise"
        for user in range(0, artifact.n_users, 11):
            items, scores = sharded.recommend(user, k=10)
            ref_items, ref_scores = flat.recommend(user, k=10)
            np.testing.assert_array_equal(items, ref_items)
            np.testing.assert_array_equal(scores, ref_scores)
    finally:
        sharded.close()
