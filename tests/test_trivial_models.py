"""Popularity / Random reference models."""

import numpy as np

from repro.eval import evaluate
from repro.models import Popularity, Random, create_model


class TestPopularity:
    def test_scores_equal_across_users(self, tiny_split):
        m = Popularity(tiny_split.train)
        scores = m.score_users(np.array([0, 1, 2]))
        np.testing.assert_array_equal(scores[0], scores[1])

    def test_most_popular_item_ranked_first(self, tiny_split):
        m = Popularity(tiny_split.train)
        counts = np.bincount(tiny_split.train.item_ids, minlength=tiny_split.train.n_items)
        top = m.score_users(np.array([0]))[0].argmax()
        assert counts[top] == counts.max()

    def test_beats_random(self, tiny_split):
        pop = evaluate(Popularity(tiny_split.train).fit(), tiny_split, on="test")
        rnd = evaluate(Random(tiny_split.train).fit(), tiny_split, on="test")
        assert pop.mean() > rnd.mean()

    def test_registered(self, tiny_split):
        m = create_model("Popularity", tiny_split.train)
        assert isinstance(m, Popularity)


class TestRandom:
    def test_in_range(self, tiny_split):
        m = Random(tiny_split.train)
        scores = m.score_users(np.array([0]))
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_seeded_stream_deterministic_across_instances(self, tiny_split):
        from repro.models import TrainConfig

        a = Random(tiny_split.train, TrainConfig(seed=5)).score_users(np.array([0]))
        b = Random(tiny_split.train, TrainConfig(seed=5)).score_users(np.array([0]))
        np.testing.assert_array_equal(a, b)
