"""The JSON HTTP endpoint: routes, payload shapes, typed status codes.

Spins a real :class:`ServiceHTTPServer` on an ephemeral port and talks
to it with ``urllib`` — no mocking, the same wire path ``repro serve``
exposes.  Bad requests must come back ``400`` with an ``error`` body,
unknown routes ``404``, and the server must survive all of them.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import MODEL_SCHEMA, RecommenderService, create_server, export_payload


@pytest.fixture(scope="module")
def service(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(9)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("http") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return RecommenderService(path)


@pytest.fixture(scope="module")
def base_url(service):
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealth:
    def test_health_reports_model_identity(self, base_url, service):
        code, body = _get(f"{base_url}/health")
        assert code == 200
        assert body == {
            "status": "ok",
            "schema": MODEL_SCHEMA,
            "model": "Dense",
            "score_fn": "dense",
            "n_users": service.n_users,
            "n_items": service.n_items,
        }


class TestRecommend:
    def test_matches_service_directly(self, base_url, service):
        code, body = _get(f"{base_url}/recommend?user=3&k=7")
        assert code == 200
        items, scores = service.recommend(3, k=7)
        assert body["user"] == 3
        assert body["k"] == 7
        assert body["exclude_seen"] is True
        assert body["items"] == [int(i) for i in items]
        assert body["scores"] == pytest.approx([float(s) for s in scores])

    def test_k_defaults_to_ten(self, base_url):
        code, body = _get(f"{base_url}/recommend?user=0")
        assert code == 200
        assert body["k"] == 10

    def test_exclude_seen_flag_parsing(self, base_url, service):
        code, body = _get(f"{base_url}/recommend?user=2&k=5&exclude_seen=false")
        assert code == 200
        items, _ = service.recommend(2, k=5, exclude_seen=False)
        assert body["exclude_seen"] is False
        assert body["items"] == [int(i) for i in items]

    def test_missing_user_is_400(self, base_url):
        code, body = _get(f"{base_url}/recommend?k=5")
        assert code == 400
        assert "user" in body["error"]

    def test_out_of_range_user_is_400(self, base_url):
        code, body = _get(f"{base_url}/recommend?user=99999")
        assert code == 400
        assert "out of range" in body["error"]

    def test_malformed_k_is_400(self, base_url):
        code, body = _get(f"{base_url}/recommend?user=0&k=ten")
        assert code == 400
        assert "integer" in body["error"]

    def test_malformed_exclude_seen_is_400(self, base_url):
        code, body = _get(f"{base_url}/recommend?user=0&exclude_seen=maybe")
        assert code == 400
        assert "boolean" in body["error"]


class TestScore:
    def test_matches_service_directly(self, base_url, service):
        payload = json.dumps({"user": 1, "items": [0, 5, 9]}).encode()
        code, body = _post(f"{base_url}/score", payload)
        assert code == 200
        assert body["scores"] == pytest.approx(list(service.score(1, [0, 5, 9])))

    def test_invalid_json_is_400(self, base_url):
        code, body = _post(f"{base_url}/score", b"{not json")
        assert code == 400
        assert "JSON" in body["error"]

    def test_missing_fields_is_400(self, base_url):
        code, body = _post(f"{base_url}/score", json.dumps({"user": 1}).encode())
        assert code == 400
        assert "items" in body["error"]

    def test_out_of_range_item_is_400(self, base_url, service):
        payload = json.dumps({"user": 0, "items": [service.n_items]}).encode()
        code, body = _post(f"{base_url}/score", payload)
        assert code == 400
        assert "out of range" in body["error"]


class TestStatsAndRouting:
    def test_stats_snapshot_served(self, base_url):
        code, body = _get(f"{base_url}/stats")
        assert code == 200
        assert {"model", "requests", "cache", "latency"} <= set(body)

    def test_unknown_get_path_is_404(self, base_url):
        code, body = _get(f"{base_url}/nope")
        assert code == 404
        assert "/nope" in body["error"]

    def test_unknown_post_path_is_404(self, base_url):
        code, _ = _post(f"{base_url}/recommend", b"{}")
        assert code == 404

    def test_server_survives_errors(self, base_url):
        """A burst of bad requests must not take the server down."""
        for _ in range(3):
            _get(f"{base_url}/recommend?user=-1")
            _post(f"{base_url}/score", b"garbage")
        code, _ = _get(f"{base_url}/health")
        assert code == 200
