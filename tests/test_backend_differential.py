"""Differential suite: every fused kernel matches the numpy reference ≤1e-10.

The fused backend's contract (``docs/BACKENDS.md``) is agreement with the
``numpy`` reference backend within 1e-10 on every kernel it overrides.
This file enforces that contract two ways:

* deterministic edge fixtures — empty batches, 1-row batches, denormal
  coordinates, points parked on the clamp boundaries (coincident Lorentz
  rows, Poincaré points grazing the unit sphere);
* a Hypothesis sweep over random shapes and values, subnormals included.

``rank_topk`` is discrete, so there the requirement is exact index
equality, not a tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.backend import FusedBackend, NumpyBackend
from repro.backend.constants import BOUNDARY_EPS

REF = NumpyBackend()
FUSED = FusedBackend()

# The fused backend's documented agreement bound.
TOL = FUSED.tolerance

# (kernel, input builder) for every kernel FusedBackend overrides; builders
# map an (n_rows_a, n_rows_b, dim) shape request to positional args.


def _euclid(b, n, d, rng):
    return rng.normal(0.0, 2.0, size=(b, d)), rng.normal(0.0, 2.0, size=(n, d))


def _lorentz_rows(rng, n, d):
    spatial = rng.normal(0.0, 0.5, size=(n, d))
    time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
    return np.concatenate([time, spatial], axis=-1)


def _poincare_rows(rng, n, d, radius=0.6):
    x = rng.normal(size=(n, d))
    norms = np.maximum(np.linalg.norm(x, axis=-1, keepdims=True), 1e-12)
    scale = radius * rng.uniform(0.01, 1.0, size=(n, 1))
    return x / norms * scale


def _assert_kernel_match(kernel, *args):
    expected = getattr(REF, kernel)(*args)
    actual = getattr(FUSED, kernel)(*args)
    assert actual.shape == expected.shape, kernel
    np.testing.assert_allclose(actual, expected, rtol=TOL, atol=TOL, err_msg=kernel)


PAIRWISE_KERNELS = [
    "sq_dist_euclid_gram",
    "sq_dist_euclid_broadcast",
    "sq_dist_lorentz",
    "poincare_dist_matrix",
]
ROWWISE_KERNELS = ["lorentz_dist", "poincare_dist"]
MAP_KERNELS = [
    "lorentz_expmap0",
    "lorentz_logmap0",
    "poincare_expmap0",
    "poincare_logmap0",
]


def _pairwise_args(kernel, rng, b, n, d):
    if kernel == "sq_dist_lorentz":
        return _lorentz_rows(rng, b, d), _lorentz_rows(rng, n, d)
    if kernel == "poincare_dist_matrix":
        return _poincare_rows(rng, b, d), _poincare_rows(rng, n, d)
    return _euclid(b, n, d, rng)


def _rowwise_args(kernel, rng, n, d):
    if kernel == "lorentz_dist":
        return _lorentz_rows(rng, n, d), _lorentz_rows(rng, n, d)
    return _poincare_rows(rng, n, d), _poincare_rows(rng, n, d)


def _map_args(kernel, rng, n, d):
    if kernel == "lorentz_expmap0":
        return (rng.normal(0.0, 0.5, size=(n, d)),)
    if kernel == "lorentz_logmap0":
        return (_lorentz_rows(rng, n, d),)
    if kernel == "poincare_expmap0":
        return (rng.normal(0.0, 0.5, size=(n, d)),)
    return (_poincare_rows(rng, n, d),)


class TestEdgeShapes:
    """Empty and 1-row batches must round-trip both backends identically."""

    @pytest.mark.parametrize("kernel", PAIRWISE_KERNELS)
    @pytest.mark.parametrize("b,n", [(0, 3), (3, 0), (0, 0), (1, 1), (1, 5)])
    def test_pairwise(self, kernel, b, n):
        rng = np.random.default_rng(1)
        _assert_kernel_match(kernel, *_pairwise_args(kernel, rng, b, n, 4))

    @pytest.mark.parametrize("kernel", ROWWISE_KERNELS)
    @pytest.mark.parametrize("n", [0, 1, 7])
    def test_rowwise(self, kernel, n):
        rng = np.random.default_rng(2)
        _assert_kernel_match(kernel, *_rowwise_args(kernel, rng, n, 5))

    @pytest.mark.parametrize("kernel", ROWWISE_KERNELS)
    def test_rowwise_single_vector(self, kernel):
        # 1-d (unbatched) inputs: reductions produce 0-d intermediates,
        # the shape that once broke in-place fusing.
        rng = np.random.default_rng(3)
        x, y = _rowwise_args(kernel, rng, 1, 5)
        _assert_kernel_match(kernel, x[0], y[0])

    @pytest.mark.parametrize("kernel", MAP_KERNELS)
    @pytest.mark.parametrize("n", [0, 1, 6])
    def test_maps(self, kernel, n):
        rng = np.random.default_rng(4)
        _assert_kernel_match(kernel, *_map_args(kernel, rng, n, 4))


class TestClampBoundaries:
    def test_coincident_lorentz_rows_clamp_to_zero_distance(self):
        # ⟨x,x⟩_L = -1 exactly up to rounding: the arccosh argument sits on
        # the clamp boundary and both backends must land on distance 0.
        rng = np.random.default_rng(5)
        x = _lorentz_rows(rng, 6, 4)
        _assert_kernel_match("sq_dist_lorentz", x, x)
        _assert_kernel_match("lorentz_dist", x, x)

    def test_poincare_points_grazing_the_sphere(self):
        # Norms within BOUNDARY_EPS of 1: the conformal denominators hit
        # their floors and both backends must clamp identically.
        rng = np.random.default_rng(6)
        x = _poincare_rows(rng, 5, 4)
        x = x / np.linalg.norm(x, axis=-1, keepdims=True) * (1.0 - BOUNDARY_EPS / 2)
        y = _poincare_rows(rng, 5, 4)
        _assert_kernel_match("poincare_dist", x, y)
        _assert_kernel_match("poincare_dist_matrix", x, y)
        _assert_kernel_match("poincare_logmap0", x)

    def test_zero_tangents_and_origin(self):
        zero = np.zeros((3, 4))
        _assert_kernel_match("lorentz_expmap0", zero)
        _assert_kernel_match("poincare_expmap0", zero)
        _assert_kernel_match("poincare_logmap0", zero)

    def test_einstein_midpoint_zero_weights_hit_the_eps_floor(self):
        rng = np.random.default_rng(7)
        points = _poincare_rows(rng, 4, 3)
        _assert_kernel_match("einstein_midpoint", points, np.zeros(4))


class TestDenormals:
    @pytest.mark.parametrize("kernel", PAIRWISE_KERNELS)
    def test_subnormal_coordinates(self, kernel):
        tiny = np.full((3, 4), 5e-324)
        tiny[1] *= -1.0
        if kernel == "sq_dist_lorentz":
            u = np.concatenate([np.ones((3, 1)), tiny], axis=-1)
            _assert_kernel_match(kernel, u, u)
        else:
            _assert_kernel_match(kernel, tiny, tiny)

    @pytest.mark.parametrize("kernel", MAP_KERNELS)
    def test_subnormal_map_inputs(self, kernel):
        tiny = np.full((2, 3), 1e-310)
        if kernel == "lorentz_logmap0":
            tiny = np.concatenate([np.ones((2, 1)), tiny], axis=-1)
        elif kernel == "poincare_logmap0":
            pass  # subnormal points are (deep) interior points — valid as-is
        _assert_kernel_match(kernel, tiny)


class TestDiscreteKernels:
    def test_rank_topk_indices_are_identical(self):
        # Selection is discrete: backends must agree exactly, not within tol.
        rng = np.random.default_rng(8)
        scores = rng.normal(size=(9, 40))
        scores[2, :5] = scores[2, 5]  # ties exercise the stable ordering
        for k in (1, 5, 40):
            np.testing.assert_array_equal(
                FUSED.rank_topk(scores, k), REF.rank_topk(scores, k)
            )


@pytest.mark.slow
class TestHypothesisSweep:
    """Random shapes and values (subnormals included) stay within 1e-10."""

    @settings(max_examples=40, deadline=None)
    @given(
        kernel=st.sampled_from(PAIRWISE_KERNELS),
        b=st.integers(0, 6),
        n=st.integers(0, 6),
        d=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    def test_pairwise_kernels(self, kernel, b, n, d, seed):
        rng = np.random.default_rng(seed)
        _assert_kernel_match(kernel, *_pairwise_args(kernel, rng, b, n, d))

    @settings(max_examples=40, deadline=None)
    @given(
        kernel=st.sampled_from(MAP_KERNELS),
        n=st.integers(0, 6),
        d=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    def test_map_kernels(self, kernel, n, d, seed):
        rng = np.random.default_rng(seed)
        _assert_kernel_match(kernel, *_map_args(kernel, rng, n, d))

    @settings(max_examples=30, deadline=None)
    @given(
        arr=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(0, 5), st.integers(1, 5)),
            elements=st.floats(
                -2.0, 2.0, allow_nan=False, allow_subnormal=True, width=64
            ),
        )
    )
    def test_euclid_gram_on_adversarial_values(self, arr):
        _assert_kernel_match("sq_dist_euclid_gram", arr, arr)
        _assert_kernel_match("sq_dist_euclid_broadcast", arr, arr)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 5),
        d=st.integers(1, 5),
        seed=st.integers(0, 2**16),
        weight_floor=st.floats(0.0, 1.0),
    )
    def test_einstein_midpoint(self, n, d, seed, weight_floor):
        rng = np.random.default_rng(seed)
        points = _poincare_rows(rng, n, d)
        weights = weight_floor * rng.uniform(size=n)
        _assert_kernel_match("einstein_midpoint", points, weights)
