"""Engine-level tests: suppressions, rule selection, reporters and exit codes."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Suppressions,
    all_project_rules,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    get_rule,
    known_rule_names,
    render_json,
    render_text,
    write_report,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).parents[1]

RULE_NAMES = {
    "backend-discipline",
    "bare-except",
    "global-rng",
    "inplace-tensor-data",
    "loop-invariant-rebuild",
    "magic-epsilon",
    "manifold-double-map",
    "missing-backward",
    "mixed-manifold-op",
    "mutable-default-arg",
    "ndarray-row-loop",
    "print-call",
    "redundant-clamp",
    "unclamped-boundary-op",
}

PROJECT_RULE_NAMES = {
    "frozen-scores-contract",
    "reference-twin",
    "untracked-parameter",
}

TWO_EPSILONS = "A = 1e-12\nB = 1e-12\n"


class TestSuppressions:
    def test_trailing_comment_is_line_level(self):
        supp = Suppressions.from_source("x = 1e-12  # repro-lint: disable=magic-epsilon\n")
        assert supp.file_level == set()
        assert supp.by_line == {1: {"magic-epsilon"}}

    def test_standalone_comment_is_file_level(self):
        supp = Suppressions.from_source("# repro-lint: disable=magic-epsilon, print-call\nx = 1\n")
        assert supp.file_level == {"magic-epsilon", "print-call"}
        assert supp.by_line == {}

    def test_line_level_suppression_only_masks_its_line(self):
        source = "A = 1e-12  # repro-lint: disable=magic-epsilon\nB = 1e-12\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert [(v.rule, v.line) for v in violations] == [("magic-epsilon", 2)]

    def test_disable_all(self):
        source = "# repro-lint: disable=all\n" + TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_unsuppressed_source_reports_both_lines(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        assert [v.line for v in violations] == [1, 2]


class TestRuleSelection:
    def test_all_rules_registered(self):
        assert {rule.name for rule in all_rules()} == RULE_NAMES

    def test_all_project_rules_registered(self):
        assert {rule.name for rule in all_project_rules()} == PROJECT_RULE_NAMES

    def test_known_rule_names_includes_pseudo_rules(self):
        names = known_rule_names()
        assert RULE_NAMES <= names
        assert PROJECT_RULE_NAMES <= names
        assert {"syntax-error", "bad-suppression"} <= names

    def test_get_rule_roundtrip(self):
        assert get_rule("magic-epsilon").name == "magic-epsilon"

    def test_select_restricts_to_named_rules(self):
        source = TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        violations = analyze_source(source, "src/repro/demo.py", select=["mutable-default-arg"])
        assert [v.rule for v in violations] == ["mutable-default-arg"]

    def test_ignore_drops_named_rules(self):
        source = TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        violations = analyze_source(source, "src/repro/demo.py", ignore=["magic-epsilon"])
        assert [v.rule for v in violations] == ["mutable-default-arg"]

    def test_unknown_rule_raises_key_error(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            analyze_source("x = 1\n", "src/repro/demo.py", select=["no-such-rule"])


class TestSyntaxError:
    def test_unparsable_source_reports_syntax_error_rule(self):
        violations = analyze_source("def broken(:\n", "src/repro/demo.py")
        assert len(violations) == 1
        assert violations[0].rule == "syntax-error"
        assert violations[0].line >= 1

    def test_unparsable_file_on_disk(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = analyze_file(bad)
        assert [v.rule for v in violations] == ["syntax-error"]

    def test_syntax_error_file_does_not_poison_tree_analysis(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "bad.py").write_text(TWO_EPSILONS)
        violations = analyze_paths([tmp_path])
        assert sorted({v.rule for v in violations}) == ["magic-epsilon", "syntax-error"]


class TestEdgeCaseFiles:
    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.py"
        empty.write_text("")
        assert analyze_file(empty) == []

    def test_comments_only_file(self, tmp_path):
        f = tmp_path / "comments.py"
        f.write_text("# just a note\n# another note\n")
        assert analyze_file(f) == []

    def test_utf8_bom_is_decoded(self, tmp_path):
        f = tmp_path / "bom.py"
        f.write_bytes(b"\xef\xbb\xbfX = 1e-12\n")
        violations = analyze_file(f)
        assert [v.rule for v in violations] == ["magic-epsilon"]

    def test_pep263_encoding_declaration(self, tmp_path):
        f = tmp_path / "latin.py"
        f.write_bytes(b"# -*- coding: latin-1 -*-\n# caf\xe9\nX = 1e-12\n")
        violations = analyze_file(f)
        assert [v.rule for v in violations] == ["magic-epsilon"]
        assert violations[0].line == 3

    def test_undecodable_bytes_report_syntax_error(self, tmp_path):
        f = tmp_path / "mojibake.py"
        f.write_bytes(b"X = 1\n\xff\xfe broken utf-8 \xff\n")
        violations = analyze_file(f)
        assert [v.rule for v in violations] == ["syntax-error"]
        assert "decoded" in violations[0].message


class TestSuppressionPrecedence:
    def test_file_level_beats_trailing_line_level(self):
        # The standalone comment masks the rule file-wide even though an
        # individual line also carries (a different) trailing suppression.
        source = (
            "# repro-lint: disable=magic-epsilon\n"
            "A = 1e-12  # repro-lint: disable=print-call\n"
            "B = 1e-12\n"
        )
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_trailing_suppression_does_not_leak_to_other_lines(self):
        source = "A = 1e-12  # repro-lint: disable=magic-epsilon\nB = 1e-12\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert [(v.rule, v.line) for v in violations] == [("magic-epsilon", 2)]

    def test_trailing_all_masks_only_its_line(self):
        source = "A = 1e-12  # repro-lint: disable=all\nB = 1e-12\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert [v.line for v in violations] == [2]


class TestBadSuppression:
    def test_unknown_rule_name_in_comment_is_reported(self):
        source = "x = 1  # repro-lint: disable=unclamped-boundry-op\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert [v.rule for v in violations] == ["bad-suppression"]
        assert "unclamped-boundry-op" in violations[0].message

    def test_known_rule_name_is_not_reported(self):
        source = "x = 1e-12  # repro-lint: disable=magic-epsilon\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_disable_all_is_a_known_target(self):
        source = "# repro-lint: disable=all\nx = 1e-12\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_standalone_unknown_name_reported_once_with_location(self):
        source = "# repro-lint: disable=nope\nx = 1\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert len(violations) == 1
        assert violations[0].line == 1
        assert violations[0].severity == "error"

    def test_project_rule_names_are_valid_suppression_targets(self):
        source = "# repro-lint: disable=reference-twin\nx = 1\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_bad_suppression_is_itself_suppressible(self):
        source = "# repro-lint: disable=bad-suppression\nx = 1  # repro-lint: disable=nope\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_cli_select_unknown_rule_exits_two(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main([str(clean), "--ignore", "bogus"], stdout=io.StringIO()) == 2


class TestReporting:
    def test_text_report_contains_location_and_summary(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        text = render_text(violations)
        assert "src/repro/demo.py:1:5: magic-epsilon:" in text
        assert "2 violation(s)" in text
        assert "magic-epsilon=2" in text

    def test_text_report_clean(self):
        assert "no violations" in render_text([])

    def test_json_report_structure(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        payload = json.loads(render_json(violations))
        assert payload["total"] == 2
        assert payload["counts"] == {"magic-epsilon": 2}
        first = payload["violations"][0]
        assert first["rule"] == "magic-epsilon"
        assert first["path"] == "src/repro/demo.py"
        assert first["line"] == 1

    def test_write_report_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown report format"):
            write_report([], io.StringIO(), fmt="xml")


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        out = io.StringIO()
        assert main([str(clean)], stdout=out) == 0
        assert "no violations" in out.getvalue()

    def test_exit_one_on_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        out = io.StringIO()
        assert main([str(bad)], stdout=out) == 1
        assert "magic-epsilon" in out.getvalue()
        assert "bad.py:1:5" in out.getvalue()

    def test_exit_two_on_missing_path(self):
        assert main(["does/not/exist"], stdout=io.StringIO()) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main([str(clean), "--select", "bogus"], stdout=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], stdout=out) == 0
        listing = out.getvalue()
        for name in RULE_NAMES | PROJECT_RULE_NAMES:
            assert name in listing
        assert "[warn]" in listing  # the perf pack is advisory
        assert ", project]" in listing

    def test_warn_only_findings_exit_zero(self, tmp_path):
        hot = tmp_path / "eval"
        hot.mkdir()
        bad = hot / "loops.py"
        bad.write_text(
            "import numpy as np\n"
            "\n"
            "def f(n):\n"
            "    scores = np.zeros((n, 4))\n"
            "    total = 0.0\n"
            "    for row in scores:\n"
            "        total += row[0]\n"
            "    return total\n"
        )
        out = io.StringIO()
        assert main([str(bad)], stdout=out) == 0
        assert "ndarray-row-loop" in out.getvalue()
        assert "[warn]" in out.getvalue()

    def test_sarif_format_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        out = io.StringIO()
        assert main([str(bad), "--format", "sarif"], stdout=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"magic-epsilon"}
        assert all(r["level"] == "error" for r in results)
        driver_rules = {r["id"] for r in payload["runs"][0]["tool"]["driver"]["rules"]}
        assert RULE_NAMES | PROJECT_RULE_NAMES <= driver_rules

    def test_out_flag_writes_report_to_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        report = tmp_path / "report.json"
        out = io.StringIO()
        assert main([str(bad), "--format", "json", "--out", str(report)], stdout=out) == 1
        assert json.loads(report.read_text())["total"] == 2
        assert str(report) in out.getvalue()

    def test_json_format_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        out = io.StringIO()
        assert main([str(bad), "--format", "json"], stdout=out) == 1
        assert json.loads(out.getvalue())["total"] == 2

    def test_analyze_paths_rejects_missing_entry(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["does/not/exist"])


def test_module_entry_point_subprocess(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(TWO_EPSILONS)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(bad)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "magic-epsilon" in proc.stdout
