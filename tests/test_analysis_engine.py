"""Engine-level tests: suppressions, rule selection, reporters and exit codes."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Suppressions,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    render_json,
    render_text,
    write_report,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).parents[1]

RULE_NAMES = {
    "bare-except",
    "global-rng",
    "inplace-tensor-data",
    "magic-epsilon",
    "missing-backward",
    "mutable-default-arg",
    "print-call",
    "unclamped-boundary-op",
}

TWO_EPSILONS = "A = 1e-12\nB = 1e-12\n"


class TestSuppressions:
    def test_trailing_comment_is_line_level(self):
        supp = Suppressions.from_source("x = 1e-12  # repro-lint: disable=magic-epsilon\n")
        assert supp.file_level == set()
        assert supp.by_line == {1: {"magic-epsilon"}}

    def test_standalone_comment_is_file_level(self):
        supp = Suppressions.from_source("# repro-lint: disable=magic-epsilon, print-call\nx = 1\n")
        assert supp.file_level == {"magic-epsilon", "print-call"}
        assert supp.by_line == {}

    def test_line_level_suppression_only_masks_its_line(self):
        source = "A = 1e-12  # repro-lint: disable=magic-epsilon\nB = 1e-12\n"
        violations = analyze_source(source, "src/repro/demo.py")
        assert [(v.rule, v.line) for v in violations] == [("magic-epsilon", 2)]

    def test_disable_all(self):
        source = "# repro-lint: disable=all\n" + TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        assert analyze_source(source, "src/repro/demo.py") == []

    def test_unsuppressed_source_reports_both_lines(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        assert [v.line for v in violations] == [1, 2]


class TestRuleSelection:
    def test_all_rules_registered(self):
        assert {rule.name for rule in all_rules()} == RULE_NAMES

    def test_get_rule_roundtrip(self):
        assert get_rule("magic-epsilon").name == "magic-epsilon"

    def test_select_restricts_to_named_rules(self):
        source = TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        violations = analyze_source(source, "src/repro/demo.py", select=["mutable-default-arg"])
        assert [v.rule for v in violations] == ["mutable-default-arg"]

    def test_ignore_drops_named_rules(self):
        source = TWO_EPSILONS + "def f(b=[]):\n    return b\n"
        violations = analyze_source(source, "src/repro/demo.py", ignore=["magic-epsilon"])
        assert [v.rule for v in violations] == ["mutable-default-arg"]

    def test_unknown_rule_raises_key_error(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            analyze_source("x = 1\n", "src/repro/demo.py", select=["no-such-rule"])


class TestSyntaxError:
    def test_unparsable_source_reports_syntax_error_rule(self):
        violations = analyze_source("def broken(:\n", "src/repro/demo.py")
        assert len(violations) == 1
        assert violations[0].rule == "syntax-error"
        assert violations[0].line >= 1


class TestReporting:
    def test_text_report_contains_location_and_summary(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        text = render_text(violations)
        assert "src/repro/demo.py:1:5: magic-epsilon:" in text
        assert "2 violation(s)" in text
        assert "magic-epsilon=2" in text

    def test_text_report_clean(self):
        assert "no violations" in render_text([])

    def test_json_report_structure(self):
        violations = analyze_source(TWO_EPSILONS, "src/repro/demo.py")
        payload = json.loads(render_json(violations))
        assert payload["total"] == 2
        assert payload["counts"] == {"magic-epsilon": 2}
        first = payload["violations"][0]
        assert first["rule"] == "magic-epsilon"
        assert first["path"] == "src/repro/demo.py"
        assert first["line"] == 1

    def test_write_report_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown report format"):
            write_report([], io.StringIO(), fmt="xml")


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        out = io.StringIO()
        assert main([str(clean)], stdout=out) == 0
        assert "no violations" in out.getvalue()

    def test_exit_one_on_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        out = io.StringIO()
        assert main([str(bad)], stdout=out) == 1
        assert "magic-epsilon" in out.getvalue()
        assert "bad.py:1:5" in out.getvalue()

    def test_exit_two_on_missing_path(self):
        assert main(["does/not/exist"], stdout=io.StringIO()) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main([str(clean), "--select", "bogus"], stdout=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], stdout=out) == 0
        listing = out.getvalue()
        for name in RULE_NAMES:
            assert name in listing

    def test_json_format_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TWO_EPSILONS)
        out = io.StringIO()
        assert main([str(bad), "--format", "json"], stdout=out) == 1
        assert json.loads(out.getvalue())["total"] == 2

    def test_analyze_paths_rejects_missing_entry(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["does/not/exist"])


def test_module_entry_point_subprocess(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(TWO_EPSILONS)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(bad)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "magic-epsilon" in proc.stdout
