"""Negative sampling invariants."""

import numpy as np

from repro.data import SyntheticConfig, TripletSampler, generate


def make_train():
    return generate(SyntheticConfig(n_users=40, n_items=60, seed=21))


class TestTripletSampler:
    def test_negatives_never_positive(self):
        train = make_train()
        sampler = TripletSampler(train, n_negatives=3, seed=0)
        pos_set = set(zip(train.user_ids.tolist(), train.item_ids.tolist()))
        users = train.user_ids[:200]
        negs = sampler.sample_negatives(users)
        for u, row in zip(users, negs):
            for v in row:
                assert (int(u), int(v)) not in pos_set

    def test_negative_shape(self):
        sampler = TripletSampler(make_train(), n_negatives=4, seed=0)
        out = sampler.sample_negatives(np.array([0, 1, 2]))
        assert out.shape == (3, 4)

    def test_explicit_count_overrides_default(self):
        sampler = TripletSampler(make_train(), n_negatives=1, seed=0)
        assert sampler.sample_negatives(np.array([0]), n_each=7).shape == (1, 7)

    def test_epoch_covers_all_positives(self):
        train = make_train()
        sampler = TripletSampler(train, seed=0)
        seen = 0
        for users, pos, neg in sampler.epoch(128):
            assert len(users) == len(pos) == len(neg)
            seen += len(users)
        assert seen == train.n_interactions

    def test_epoch_batches_respect_size(self):
        sampler = TripletSampler(make_train(), seed=0)
        sizes = [len(u) for u, _, _ in sampler.epoch(100)]
        assert all(s <= 100 for s in sizes)

    def test_shuffling_changes_order(self):
        train = make_train()
        s1 = TripletSampler(train, seed=1)
        s2 = TripletSampler(train, seed=2)
        u1 = next(iter(s1.epoch(64)))[0]
        u2 = next(iter(s2.epoch(64)))[0]
        assert not np.array_equal(u1, u2)

    def test_deterministic_with_same_seed(self):
        train = make_train()
        rows = []
        for seed in (5, 5):
            sampler = TripletSampler(train, seed=seed)
            users, pos, neg = next(iter(sampler.epoch(64)))
            rows.append((users.copy(), pos.copy(), neg.copy()))
        np.testing.assert_array_equal(rows[0][0], rows[1][0])
        np.testing.assert_array_equal(rows[0][2], rows[1][2])
