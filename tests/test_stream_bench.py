"""Staleness harness + the ``stream`` bench case set.

The replay protocol is validated on a micro configuration (metric decay
structure, fairness of the shared held-out positives); the paired bench
cases are checked for shape, and a quick end-to-end run must produce a
valid ``repro.bench/v1`` document whose workload blocks carry the
fold-in / retrain / frozen metrics the acceptance gates read.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.harness import run_cases, validate_result
from repro.bench.stream import stream_cases
from repro.stream import StalenessConfig, build_context, replay
from repro.stream.staleness import fold_in_window, frozen_ndcg, retrain_window

MICRO = StalenessConfig(model="CML", preset="ciao", scale=0.08, epochs=1, n_windows=2, seed=0)


@pytest.fixture(scope="module")
def ctx():
    return build_context(MICRO)


def test_context_withholds_stream_users_from_base_training(ctx):
    base_meta = ctx.base_artifact.meta["dataset"]
    # Id space is preserved: the base model covers every user row...
    assert base_meta["n_users"] == ctx.dataset.n_users
    # ...but stream users carry no baseline interactions (cold rows).
    for user in ctx.stream_users.tolist():
        assert len(ctx.base_artifact.seen_items(user)) == 0
    assert len(ctx.stream_users) >= 1


def test_windows_are_cumulative_and_eval_positives_fixed(ctx):
    sizes = [len(events) for events in ctx.window_events]
    assert sizes == sorted(sizes)
    first = {(e.user, e.item) for e in ctx.window_events[0]}
    last = {(e.user, e.item) for e in ctx.window_events[-1]}
    assert first <= last
    evidence_items = {e.item for e in ctx.window_events[-1]}
    for user, positives in zip(ctx.stream_users.tolist(), ctx.eval_positives):
        # No policy can be graded on an item another policy masks as seen.
        per_user_evidence = {e.item for e in ctx.window_events[-1] if e.user == user}
        assert not (set(positives.tolist()) & per_user_evidence)
    assert evidence_items  # the stream is non-empty


def test_policies_return_metrics_and_foldin_beats_frozen(ctx):
    frozen = frozen_ndcg(ctx)
    folded, fold = fold_in_window(ctx, ctx.config.n_windows - 1)
    assert set(fold) == {"ndcg", "recall"} == set(frozen)
    assert 0.0 <= fold["ndcg"] <= 1.0
    # Fold-in consumed the evidence: stream users now have seen items.
    touched = [u for u in ctx.stream_users.tolist() if len(folded.seen_items(u))]
    assert touched
    assert folded.meta["stream"]["generation"] == 1
    # The evidence should help: fold-in never does worse than doing nothing.
    assert fold["ndcg"] >= frozen["ndcg"]


def test_retrain_window_uses_base_plus_evidence(ctx):
    artifact, metrics = retrain_window(ctx, 0)
    assert artifact.meta["dataset"]["n_users"] == ctx.dataset.n_users
    assert "ndcg" in metrics
    user = int(ctx.stream_users[0])
    assert len(artifact.seen_items(user)) >= 1


def test_replay_document_structure():
    doc = replay(MICRO)
    assert doc["n_stream_users"] >= 1
    assert len(doc["windows"]) == MICRO.n_windows
    for record in doc["windows"]:
        assert set(record) >= {"window", "events", "fold_in", "retrain", "frozen", "ratio"}
        assert record["ratio"] >= 0.0
    assert doc["config"]["model"] == "CML"


def test_run_staleness_experiment_writes_valid_doc(tmp_path):
    from repro.train import run_staleness_experiment

    doc = run_staleness_experiment(
        tmp_path, model="CML", preset="ciao", scale=0.08, n_windows=2, epochs=1, seed=0
    )
    assert doc["kind"] == "staleness"
    on_disk = json.loads((tmp_path / "staleness.json").read_text())
    assert on_disk["schema"] == "repro.experiment/v1"
    assert len(on_disk["windows"]) == 2
    table = (tmp_path / "staleness.txt").read_text()
    assert "fold-in NDCG@10" in table


def test_stream_cases_shape():
    cases = stream_cases()
    assert [c.name for c in cases] == [
        "stream.window0.foldin_vs_retrain",
        "stream.window1.foldin_vs_retrain",
    ]
    assert all(c.group == "stream" for c in cases)
    assert all(c.reference is not None and c.workload is not None for c in cases)


@pytest.mark.slow
def test_quick_stream_bench_produces_valid_document():
    result = run_cases(stream_cases(), suite="stream_smoke", quick=True, warmup=0, repeats=1)
    assert validate_result(result) == []
    assert result["quick"] is True
    for record in result["benchmarks"]:
        workload = record["workload"]
        assert set(workload["ndcg_at_10"]) == {"fold_in", "retrain", "frozen"}
        assert workload["ratio"] >= 0.0
        assert record["speedup"] > 1.0
        assert np.isfinite(record["fast"]["best_s"])
