"""Candidate-index contracts: exactness, recall floors, fallback, bounds.

The load-bearing guarantees:

* ``BlockwiseIndex`` (fp64) and ``BucketedIndex`` (``max_scan=1.0``)
  return *bit-for-bit* the same item ids as :class:`ExactIndex` for
  every reducible score-fn, every ``k``, with and without exclude-seen.
  Returned scores are bit-identical for the pure inner-product family
  (``dot``, ``dot_bias`` — the reduction IS the frozen kernel) and agree
  to float64 rearrangement tolerance (1e-12) for the score-fns whose
  monotone ``finish`` re-expands a distance.  Approximate modes (fp32
  sweep, ``max_scan < 1``) only relax candidate *selection*.
* Score-fns with no reduced form degrade to an internal exact index and
  record why in provenance — never a wrong answer, never an exception.
* The bucketed per-bucket bound is provable: no item in a bucket ever
  exceeds it (Hypothesis hammers this, including the Lorentz radial
  branch).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import (
    INDEX_KINDS,
    BlockwiseIndex,
    BucketedIndex,
    ExactIndex,
    build_index,
    measure_recall,
)

from tests.conftest import make_frozen_payload, make_seen_csr

REDUCIBLE = (
    "dot",
    "dot_bias",
    "dot_aspect",
    "neg_sq_euclid",
    "neg_sq_lorentz",
    "two_channel_euclid",
)
UNSUPPORTED = ("two_channel_lorentz", "dense")
BITWISE_VALUES = ("dot", "dot_bias")


def _scorer(score_fn: str, **kw):
    from repro.serve.scoring import FrozenScorer

    return FrozenScorer(score_fn, make_frozen_payload(score_fn, **kw))


def _index_trio(score_fn: str, seed: int = 11, **build_kw):
    scorer = _scorer(score_fn, seed=seed)
    rng = np.random.default_rng(seed + 1)
    indptr, indices = make_seen_csr(rng, scorer.n_users, scorer.n_items)
    exact = ExactIndex(scorer, indptr, indices)
    return scorer, (indptr, indices), exact


def _assert_topk_equal(index, exact, users, ks=(1, 10, 50), bitwise_values=False):
    for k in ks:
        for exclude_seen in (True, False):
            for user in users:
                got_ids, got_vals = index.topk(int(user), k, exclude_seen)
                ref_ids, ref_vals = exact.topk(int(user), k, exclude_seen)
                np.testing.assert_array_equal(got_ids, ref_ids)
                if bitwise_values:
                    np.testing.assert_array_equal(got_vals, ref_vals)
                else:
                    np.testing.assert_allclose(got_vals, ref_vals, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_blockwise_fp64_matches_exact(score_fn):
    scorer, (indptr, indices), exact = _index_trio(score_fn)
    # Small blocks force many partial argpartitions + the lexsort trim.
    index = BlockwiseIndex(scorer, indptr, indices, block_items=37, pad=3)
    _assert_topk_equal(
        index,
        exact,
        users=range(0, scorer.n_users, 5),
        bitwise_values=score_fn in BITWISE_VALUES,
    )


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_bucketed_full_scan_matches_exact(score_fn):
    scorer, (indptr, indices), exact = _index_trio(score_fn)
    index = BucketedIndex(scorer, indptr, indices, n_buckets=13, max_scan=1.0)
    _assert_topk_equal(
        index,
        exact,
        users=range(0, scorer.n_users, 5),
        bitwise_values=score_fn in BITWISE_VALUES,
    )


def test_k_larger_than_catalog_is_clamped():
    scorer, (indptr, indices), exact = _index_trio("dot_bias")
    for index in (
        BlockwiseIndex(scorer, indptr, indices),
        BucketedIndex(scorer, indptr, indices),
    ):
        ids, vals = index.topk(0, scorer.n_items + 100, exclude_seen=True)
        ref_ids, ref_vals = exact.topk(0, scorer.n_items + 100, exclude_seen=True)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(vals, ref_vals)
        assert len(ids) == scorer.n_items


def test_blockwise_fp32_meets_recall_floor_with_exact_values():
    scorer, (indptr, indices), exact = _index_trio("neg_sq_lorentz")
    index = BlockwiseIndex(scorer, indptr, indices, dtype="fp32", block_items=64)
    recall = measure_recall(index, exact, ks=(10, 50), sample_users=16)
    assert recall["recall"]["10"] >= 0.99
    assert recall["recall"]["50"] >= 0.99
    # Survivors are re-scored in float64: any id both indexes return must
    # carry full-precision scores even though selection ran in fp32.
    ids, vals = index.topk(3, 10)
    ref_ids, ref_vals = exact.topk(3, 10)
    common, ia, ib = np.intersect1d(ids, ref_ids, return_indices=True)
    assert len(common) >= 9
    np.testing.assert_allclose(vals[ia], ref_vals[ib], rtol=1e-12, atol=1e-12)


def test_bucketed_partial_scan_meets_recall_floor():
    scorer, (indptr, indices), exact = _index_trio("dot_bias")
    index = BucketedIndex(scorer, indptr, indices, n_buckets=16, max_scan=0.5)
    recall = measure_recall(index, exact, ks=(10,), sample_users=16)
    assert recall["recall"]["10"] >= 0.5


@pytest.mark.parametrize("score_fn", UNSUPPORTED)
@pytest.mark.parametrize("kind", ["blockwise", "bucketed"])
def test_unsupported_score_fns_fall_back_to_exact(score_fn, kind):
    scorer = _scorer(score_fn, n_items=60)
    rng = np.random.default_rng(2)
    indptr, indices = make_seen_csr(rng, scorer.n_users, scorer.n_items)
    exact = ExactIndex(scorer, indptr, indices)
    index = INDEX_KINDS[kind](scorer, indptr, indices)
    assert index.fallback_reason
    prov = index.provenance()
    assert prov["index"] == kind
    assert prov["fallback"] == index.fallback_reason
    _assert_topk_equal(
        index, exact, users=range(0, scorer.n_users, 7), ks=(1, 10), bitwise_values=True
    )


def test_bad_build_params_raise_value_error():
    scorer, (indptr, indices), _ = _index_trio("dot")
    with pytest.raises(ValueError, match="dtype"):
        BlockwiseIndex(scorer, indptr, indices, dtype="fp8")
    with pytest.raises(ValueError, match="max_scan"):
        BucketedIndex(scorer, indptr, indices, max_scan=0.0)
    with pytest.raises(ValueError, match="max_scan"):
        BucketedIndex(scorer, indptr, indices, max_scan=1.5)


def test_topk_batch_rows_match_single_user_calls():
    scorer, (indptr, indices), _ = _index_trio("neg_sq_euclid")
    index = BlockwiseIndex(scorer, indptr, indices, block_items=50)
    users = np.asarray([0, 5, 11, 5], dtype=np.int64)
    ids, vals = index.topk_batch(users, 7)
    assert ids.shape == vals.shape == (4, 7)
    for row, user in enumerate(users):
        one_ids, one_vals = index.topk(int(user), 7)
        np.testing.assert_array_equal(ids[row], one_ids)
        np.testing.assert_array_equal(vals[row], one_vals)
    empty_ids, empty_vals = index.topk_batch(np.zeros(0, dtype=np.int64), 7)
    assert empty_ids.shape == (0, 7) and empty_vals.shape == (0, 7)


class _ArtifactShim:
    """The duck type ``build_index`` documents: scorer() + seen CSR."""

    def __init__(self, scorer, indptr, indices):
        self._scorer = scorer
        self.seen_indptr = indptr
        self.seen_indices = indices

    def scorer(self):
        return self._scorer


def test_build_index_records_provenance_and_recall():
    scorer, (indptr, indices), _ = _index_trio("dot_bias")
    shim = _ArtifactShim(scorer, indptr, indices)
    index = build_index(shim, kind="bucketed", n_buckets=8)
    prov = index.provenance()
    assert prov["index"] == "bucketed"
    assert prov["score_fn"] == "dot_bias"
    assert prov["params"] == {"n_buckets": 8, "max_scan": 1.0}
    assert prov["build_seconds"] >= 0.0
    assert prov["recall"]["recall"]["10"] == 1.0
    exact = build_index(shim, kind="exact")
    assert exact.recall is None
    with pytest.raises(ValueError, match="unknown index kind"):
        build_index(shim, kind="faiss")


# ----------------------------------------------------------------------
# Property: the per-bucket bound is provable, not merely usually true.
# Tier-2 (slow): Hypothesis hammers every bucket of real index builds,
# including the Lorentz radial branch, against the measured per-bucket
# maximum of the reduced score.

from hypothesis import given, settings
from hypothesis import strategies as st

_BOUND_SCORE_FNS = ("dot_bias", "neg_sq_lorentz", "dot_aspect")
_BOUND_CACHE: dict = {}


def _bucketed(score_fn: str, seed: int) -> BucketedIndex:
    key = (score_fn, seed)
    if key not in _BOUND_CACHE:
        scorer = _scorer(score_fn, n_users=16, n_items=120, seed=seed)
        rng = np.random.default_rng(seed)
        indptr, indices = make_seen_csr(rng, scorer.n_users, scorer.n_items)
        _BOUND_CACHE[key] = BucketedIndex(scorer, indptr, indices, n_buckets=9)
    return _BOUND_CACHE[key]


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(
    score_fn=st.sampled_from(_BOUND_SCORE_FNS),
    seed=st.integers(0, 3),
    user=st.integers(0, 15),
)
def test_bucket_bounds_are_never_violated(score_fn, seed, user):
    index = _bucketed(score_fn, seed)
    queries, _ = index.reduction.query(np.asarray([user], dtype=np.int64))
    q = queries[0]
    bounds = index.bucket_bounds(q)
    reduced = index._vectors @ q + index._bias
    for b, (lo, hi) in enumerate(index._slices):
        assert reduced[lo:hi].max() <= bounds[b], (
            f"{score_fn} seed={seed} user={user} bucket={b}: "
            f"{reduced[lo:hi].max()} > {bounds[b]}"
        )
