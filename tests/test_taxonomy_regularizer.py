"""Taxonomy-aware regularisation L_reg (Eq. 8)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.manifolds import PoincareBall
from repro.taxonomy import Taxonomy, TaxonomyNode, taxonomy_regularizer

ball = PoincareBall()


def simple_taxonomy(n_tags=6):
    child_a = TaxonomyNode(
        members=np.array([0, 1, 2]), scores=np.ones(3), level=1
    )
    child_b = TaxonomyNode(members=np.array([3, 4, 5]), scores=np.ones(3), level=1)
    root = TaxonomyNode(
        members=np.arange(n_tags), scores=np.ones(n_tags), level=0,
        children=[child_a, child_b],
    )
    return Taxonomy(root, n_tags=n_tags)


class TestRegularizer:
    def test_zero_when_tags_coincide(self):
        emb = Tensor(np.zeros((6, 3)), requires_grad=True)
        loss = taxonomy_regularizer(emb, simple_taxonomy())
        assert loss.item() < 1e-9

    def test_positive_when_spread(self, rng):
        emb = Tensor(ball.random((6, 3), rng, scale=0.3), requires_grad=True)
        loss = taxonomy_regularizer(emb, simple_taxonomy())
        assert loss.item() > 0

    def test_gradient_pulls_toward_center(self, rng):
        data = ball.random((6, 3), rng, scale=0.3)
        emb = Tensor(data, requires_grad=True)
        loss = taxonomy_regularizer(emb, simple_taxonomy())
        loss.backward()
        # A gradient step must reduce the loss (descent direction).
        stepped = ball.proj(data - 0.01 * emb.grad)
        new_loss = taxonomy_regularizer(Tensor(stepped), simple_taxonomy())
        assert new_loss.item() < loss.item()

    def test_weighted_center_uses_scores(self):
        # With one dominant score the center collapses onto that tag.
        node = TaxonomyNode(
            members=np.array([0, 1]),
            scores=np.array([1e9, 1e-9]),
            level=1,
        )
        taxo = Taxonomy(node, n_tags=3)  # node smaller than the tag space
        emb_data = np.array([[0.3, 0.0], [0.0, 0.3]])
        loss = taxonomy_regularizer(Tensor(emb_data), taxo)
        # Loss ≈ d(tag1, tag0) since center ≈ tag0 and d(tag0, center) ≈ 0.
        expected = ball.dist_np(emb_data[1], emb_data[0]) / 2.0  # mean over 2 members
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-3)

    def test_singleton_nodes_skipped(self):
        node = TaxonomyNode(members=np.array([0]), scores=np.ones(1))
        loss = taxonomy_regularizer(Tensor(np.ones((1, 2)) * 0.1), Taxonomy(node, 1))
        assert loss.item() == 0.0

    def test_fine_tags_regularized_more_than_general(self, rng):
        """Fine tags appear at more levels → accumulate more pull (paper's claim)."""
        emb = Tensor(ball.random((6, 3), rng, scale=0.3), requires_grad=True)
        taxo = simple_taxonomy()
        taxonomy_regularizer(emb, taxo).backward()
        # Tag 0 appears in root and child (2 incidences); if it were only in
        # root its gradient would come from one node. Verify all tags got
        # gradient from both levels by checking nonzero everywhere.
        assert (np.abs(emb.grad).sum(axis=1) > 0).all()

    def test_zero_scores_fall_back_to_uniform(self):
        node = TaxonomyNode(members=np.array([0, 1]), scores=np.zeros(2))
        taxo = Taxonomy(node, n_tags=3)
        emb = Tensor(np.array([[0.2, 0.0], [-0.2, 0.0]]))
        loss = taxonomy_regularizer(emb, taxo)
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_root_node_skipped(self):
        """The all-tags root contributes nothing (no hierarchy encoded)."""
        root_only = Taxonomy(
            TaxonomyNode(members=np.arange(4), scores=np.ones(4), level=0), n_tags=4
        )
        emb = Tensor(np.array([[0.3, 0.0], [-0.3, 0.0], [0.0, 0.3], [0.0, -0.3]]))
        assert taxonomy_regularizer(emb, root_only).item() == 0.0
