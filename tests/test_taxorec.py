"""TaxoRec-specific behaviour: α_u, ablation flags, taxonomy alternation."""

import numpy as np
import pytest

from repro.data import InteractionDataset
from repro.models import TaxoRec, TrainConfig, personalized_tag_weights

CFG = dict(dim=16, tag_dim=4, epochs=2, batch_size=256, lr=0.5)


class TestPersonalizedAlpha:
    def make(self, item_tags, user_ids, item_ids):
        n_items, n_tags = item_tags.shape
        return InteractionDataset(
            n_users=int(user_ids.max()) + 1,
            n_items=n_items,
            n_tags=n_tags,
            user_ids=user_ids,
            item_ids=item_ids,
            timestamps=np.arange(len(user_ids), dtype=float),
            item_tags=item_tags,
        )

    def test_repeated_tags_give_alpha_one(self):
        """All items share one tag → perfectly consistent → α = 1 (Eq. 16)."""
        tags = np.array([[1.0], [1.0], [1.0]])
        ds = self.make(tags, np.zeros(3, dtype=int), np.arange(3))
        assert personalized_tag_weights(ds)[0] == pytest.approx(1.0)

    def test_disjoint_tags_give_one_over_n(self):
        tags = np.eye(3)
        ds = self.make(tags, np.zeros(3, dtype=int), np.arange(3))
        assert personalized_tag_weights(ds)[0] == pytest.approx(1.0 / 3.0)

    def test_user_without_interactions_defaults(self):
        tags = np.eye(2)
        ds = self.make(tags, np.array([0, 0]), np.array([0, 1]))
        ds.n_users = 2  # user 1 inactive — rebuild per-user view manually
        assert personalized_tag_weights(ds)[1] == 0.5

    def test_untagged_items_default(self):
        tags = np.zeros((2, 3))
        ds = self.make(tags, np.array([0, 0]), np.array([0, 1]))
        assert personalized_tag_weights(ds)[0] == 0.5

    def test_range(self, tiny_dataset):
        alpha = personalized_tag_weights(tiny_dataset)
        assert (alpha >= 0).all() and (alpha <= 1).all()


class TestAblationFlags:
    def test_euclidean_variant_trains(self, tiny_split):
        m = TaxoRec(
            tiny_split.train,
            TrainConfig(seed=0, **CFG),
            hyperbolic=False,
            use_taxonomy=False,
        )
        m.fit(tiny_split)
        scores = m.score_users(np.array([0]))
        assert np.isfinite(scores).all()

    def test_euclidean_embeddings_flat(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG), hyperbolic=False, use_taxonomy=False)
        assert m.user_ir.data.shape[1] == 16 - 4  # no Lorentz time coordinate

    def test_hyperbolic_embeddings_on_manifold(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG))
        inner = m.lorentz.inner_np(m.user_ir.data, m.user_ir.data)
        np.testing.assert_allclose(inner, -1.0, atol=1e-9)

    def test_taxonomy_requires_hyperbolic(self, tiny_split):
        with pytest.raises(ValueError):
            TaxoRec(tiny_split.train, hyperbolic=False, use_taxonomy=True)

    def test_invalid_local_agg_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            TaxoRec(tiny_split.train, local_agg="average")

    def test_tangent_mean_ablation_runs(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG), local_agg="tangent_mean")
        m.fit(tiny_split)
        assert np.isfinite(m.score_users(np.array([0]))).all()

    def test_fixed_alpha(self, tiny_split):
        m = TaxoRec(
            tiny_split.train,
            TrainConfig(seed=0, **CFG),
            personalized_alpha=False,
            fixed_alpha=0.7,
        )
        np.testing.assert_array_equal(m.alpha_u, 0.7)
        np.testing.assert_allclose(m._alpha, 0.7 * m.beta)

    def test_beta_defaults_to_dimension_ratio(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG))
        assert m.beta == (16 - 4) / 4

    def test_beta_override_via_config(self, tiny_split):
        config = TrainConfig(seed=0, taxo_beta=7.5, **CFG)
        assert TaxoRec(tiny_split.train, config).beta == 7.5

    def test_beta_override_via_constructor(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG), tag_channel_weight=2.0)
        assert m.beta == 2.0


class TestTaxonomyAlternation:
    def test_taxonomy_built_after_warmup(self, tiny_split):
        config = TrainConfig(seed=0, dim=16, tag_dim=4, epochs=4, batch_size=256, lr=0.5)
        m = TaxoRec(tiny_split.train, config, taxo_warmup=2)
        assert m.taxonomy is None
        m.fit(tiny_split)
        assert m.taxonomy is not None

    def test_no_taxonomy_when_disabled(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG), use_taxonomy=False)
        m.fit(tiny_split)
        assert m.taxonomy is None

    def test_rebuild_covers_all_tags(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG))
        taxo = m.rebuild_taxonomy()
        assert len(taxo.root.members) == tiny_split.train.n_tags

    def test_tag_embeddings_stay_in_ball_after_training(self, tiny_split):
        config = TrainConfig(seed=0, dim=16, tag_dim=4, epochs=4, batch_size=256, lr=1.0, taxo_lambda=0.1)
        m = TaxoRec(tiny_split.train, config, taxo_warmup=1)
        m.fit(tiny_split)
        assert (np.linalg.norm(m.tag_emb.data, axis=1) < 1.0).all()

    def test_user_item_embeddings_stay_on_hyperboloid(self, tiny_split):
        config = TrainConfig(seed=0, dim=16, tag_dim=4, epochs=4, batch_size=256, lr=1.0)
        m = TaxoRec(tiny_split.train, config)
        m.fit(tiny_split)
        for p in (m.user_ir, m.item_ir, m.user_tg):
            np.testing.assert_allclose(
                m.lorentz.inner_np(p.data, p.data), -1.0, atol=1e-8
            )


class TestInference:
    def test_user_tag_distances_shape(self, tiny_split):
        m = TaxoRec(tiny_split.train, TrainConfig(seed=0, **CFG))
        m.fit(tiny_split)
        d = m.user_tag_distances(np.array([0, 1]))
        assert d.shape == (2, tiny_split.train.n_tags)
        assert (d >= 0).all()

    def test_score_users_prefers_trained_positives(self, tiny_split):
        """After training, observed items should outscore random ones on average."""
        config = TrainConfig(seed=0, dim=16, tag_dim=4, epochs=25, batch_size=256, lr=1.0, margin=2.0, n_layers=1)
        m = TaxoRec(tiny_split.train, config)
        m.fit(tiny_split)
        per_user = tiny_split.train.items_of_user()
        users = [u for u in range(10) if len(per_user[u])]
        scores = m.score_users(np.array(users))
        hits, misses = [], []
        rng = np.random.default_rng(0)
        for i, u in enumerate(users):
            pos = per_user[u]
            neg = rng.choice(tiny_split.train.n_items, size=len(pos))
            hits.append(scores[i, pos].mean())
            misses.append(scores[i, neg].mean())
        assert np.mean(hits) > np.mean(misses)
