"""Fold-in exactness: the tentpole guarantee of ``repro.stream``.

For every registry model with a foldable score-fn: train briefly, freeze
with ``artifact_from_model``, then replay the model's *own* training
interactions as an event stream.  Every event duplicates the seen-CSR,
so the fold must be an exact no-op on the arrays — and the folded
artifact must reproduce the frozen top-K *identically* (ranked lists via
``repro.eval.topk_ranking``, scores within ``1e-10``) at
``k ∈ {1, 10, 50}``.

The backend seam is locked the usual way: folding genuinely-new users
under the ``fused`` backend agrees with ``numpy`` to ``1e-10``, and the
pure-numpy ``*_reference`` twins agree with the routed solvers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import use_backend
from repro.eval import topk_ranking
from repro.models import MODEL_REGISTRY, TrainConfig
from repro.serve import RecommenderService, artifact_from_model
from repro.stream import (
    FoldInUnsupported,
    StreamState,
    fold_in_user,
    fold_in_user_reference,
    fold_into_artifact,
    foldable_score_fns,
)

MODEL_NAMES = sorted(MODEL_REGISTRY)
PARITY_KS = (1, 10, 50)
# One representative model per foldable score-fn family.
FAMILY_MODELS = ("CML", "HGCF", "LightGCN", "BPRMF", "AMF", "TaxoRec", "CML+Agg")

_CACHE: dict[str, tuple] = {}


@pytest.fixture(scope="module")
def frozen(tiny_split):
    """Factory: train + freeze one registry model (memoised, module scope)."""

    def build(name: str):
        if name not in _CACHE:
            model = MODEL_REGISTRY[name](tiny_split.train, TrainConfig(epochs=1, seed=3))
            model.fit(tiny_split)
            _CACHE[name] = (model, artifact_from_model(model, source="test-stream"))
        return _CACHE[name]

    yield build
    _CACHE.clear()


def _require_foldable(artifact):
    if artifact.score_fn not in foldable_score_fns():
        pytest.skip(f"score_fn {artifact.score_fn!r} has no embeddings to fold")


def _replay_own_interactions(artifact):
    """Ingest every training interaction of every user; fold; return both."""
    state = StreamState.from_artifact(artifact)
    events = [
        (user, int(item))
        for user in range(artifact.n_users)
        for item in artifact.seen_items(user)
    ]
    report = state.ingest(events)
    return fold_into_artifact(artifact, state), report


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_duplicate_stream_is_an_exact_no_op_on_arrays(frozen, name):
    """Every event duplicates the seen-CSR → arrays bit-identical."""
    _, artifact = frozen(name)
    _require_foldable(artifact)
    folded, report = _replay_own_interactions(artifact)
    assert report.accepted == 0
    assert report.duplicates == artifact.seen_indptr[-1]
    for key, arr in artifact.arrays.items():
        np.testing.assert_array_equal(folded.arrays[key], arr, err_msg=f"{name}:{key}")
    np.testing.assert_array_equal(folded.seen_indptr, artifact.seen_indptr)
    np.testing.assert_array_equal(folded.seen_indices, artifact.seen_indices)
    assert folded.meta["stream"]["folded_users"] == []
    assert folded.meta["stream"]["folded_items"] == []


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_folded_scores_match_live_model_within_1e10(frozen, name):
    _, artifact = frozen(name)
    _require_foldable(artifact)
    model = frozen(name)[0]
    folded, _ = _replay_own_interactions(artifact)
    users = np.arange(artifact.n_users)
    live = np.asarray(model.score_users(users), dtype=np.float64)
    served = np.asarray(folded.scorer().score_users(users), dtype=np.float64)
    np.testing.assert_allclose(served, live, rtol=0.0, atol=1e-10)


@pytest.mark.parametrize("k", PARITY_KS)
@pytest.mark.parametrize("name", MODEL_NAMES)
def test_folded_topk_identical_to_evaluator(frozen, tiny_split, name, k):
    """Post-fold served top-K == the offline evaluator's ranked lists."""
    model, artifact = frozen(name)
    _require_foldable(artifact)
    folded, _ = _replay_own_interactions(artifact)
    service = RecommenderService(folded)
    users, topk = topk_ranking(model, tiny_split, on="valid", k=k)
    for i, user in enumerate(users):
        items, scores = service.recommend(int(user), k=k, exclude_seen=True)
        np.testing.assert_array_equal(items, topk[i], err_msg=f"{name} user {user} k={k}")
        assert np.all(np.diff(scores) <= 0)


@pytest.mark.parametrize("name", FAMILY_MODELS)
def test_new_user_fold_fused_matches_numpy_within_1e10(frozen, name):
    """Folding genuinely-new users: backend seam locked at 1e-10."""
    _, artifact = frozen(name)
    new_user = artifact.n_users
    new_item = artifact.n_items
    events = [(new_user, 0), (new_user, 3), (new_user, new_item), (0, new_item)]

    def fold_with(backend: str):
        state = StreamState.from_artifact(artifact)
        state.ingest(events)
        with use_backend(backend):
            return fold_into_artifact(artifact, state)

    base = fold_with("numpy")
    fused = fold_with("fused")
    assert base.n_users == artifact.n_users + 1
    assert base.n_items == artifact.n_items + 1
    for key, arr in base.arrays.items():
        assert np.all(np.isfinite(arr)), f"{name}:{key}"
        np.testing.assert_allclose(
            fused.arrays[key], arr, rtol=0.0, atol=1e-10, err_msg=f"{name}:{key}"
        )


@pytest.mark.parametrize("name", FAMILY_MODELS)
def test_reference_twin_agrees_with_routed_solvers(frozen, name):
    _, artifact = frozen(name)
    new_user = artifact.n_users
    state = StreamState.from_artifact(artifact)
    state.ingest([(new_user, 0), (new_user, 5), (0, 1 if 1 not in set(artifact.seen_items(0)) else 2)])
    routed = fold_into_artifact(artifact, state)
    twinned = fold_into_artifact(artifact, state, use_reference=True)
    for key, arr in routed.arrays.items():
        np.testing.assert_allclose(
            twinned.arrays[key], arr, rtol=0.0, atol=1e-10, err_msg=f"{name}:{key}"
        )


@pytest.mark.parametrize("name", FAMILY_MODELS)
def test_existing_user_fold_blends_prior_with_evidence(frozen, name):
    """New evidence for an existing user moves their row, bounded by the prior."""
    _, artifact = frozen(name)
    user = 0
    unseen = np.setdiff1d(np.arange(artifact.n_items), artifact.seen_items(user))[:4]
    state = StreamState.from_artifact(artifact)
    report = state.ingest([(user, int(i)) for i in unseen])
    assert report.accepted == len(unseen)
    folded = fold_into_artifact(artifact, state)
    user_keys = [k for k in ("user", "user_ir", "user_tg") if k in artifact.arrays]
    moved = any(
        not np.array_equal(folded.arrays[k][user], artifact.arrays[k][user]) for k in user_keys
    )
    assert moved, f"{name}: evidence did not update the user row"
    # Untouched users stay frozen.
    for k in user_keys:
        np.testing.assert_array_equal(folded.arrays[k][1:], artifact.arrays[k][1:])
    # Seen-CSR picked up the evidence.
    assert set(unseen.tolist()) <= set(folded.seen_items(user).tolist())


def test_dense_artifacts_raise_foldin_unsupported(frozen):
    _, artifact = frozen("Popularity")
    assert artifact.score_fn == "dense"
    state = StreamState.from_artifact(artifact)
    state.ingest([(0, 1)])
    with pytest.raises(FoldInUnsupported) as exc:
        fold_into_artifact(artifact, state)
    assert exc.value.score_fn == "dense"
    with pytest.raises(FoldInUnsupported):
        fold_in_user("dense", artifact.arrays, np.array([0]))


def test_empty_evidence_needs_a_prior():
    arrays = {"item": np.eye(3)}
    with pytest.raises(ValueError):
        fold_in_user("dot", arrays, np.array([], dtype=np.int64))
    prior = {"user": np.array([1.0, 2.0, 3.0])}
    out = fold_in_user("dot", arrays, np.array([], dtype=np.int64), prior=prior, prior_weight=5.0)
    np.testing.assert_array_equal(out["user"], prior["user"])
    assert out["user"] is not prior["user"]  # a copy, not an alias
    ref = fold_in_user_reference(
        "dot", arrays, np.array([], dtype=np.int64), prior=prior, prior_weight=5.0
    )
    np.testing.assert_array_equal(ref["user"], prior["user"])
