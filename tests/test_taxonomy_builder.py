"""Recursive taxonomy construction and the Taxonomy tree structure."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate
from repro.manifolds import PoincareBall
from repro.taxonomy import Taxonomy, TaxonomyNode, build_taxonomy

ball = PoincareBall()


@pytest.fixture(scope="module")
def built():
    ds = generate(SyntheticConfig(n_users=60, n_items=120, branching=(3, 3), seed=9))
    rng = np.random.default_rng(0)
    emb = ball.random((ds.n_tags, 8), rng, scale=0.3)
    taxo = build_taxonomy(emb, ds.item_tags, k=3, delta=0.4, max_depth=3, rng=0)
    return ds, taxo


class TestBuildTaxonomy:
    def test_root_holds_all_tags(self, built):
        ds, taxo = built
        assert len(taxo.root.members) == ds.n_tags

    def test_every_tag_reachable(self, built):
        ds, taxo = built
        seen = set()
        for node in taxo.nodes():
            seen.update(int(t) for t in node.members)
        assert seen == set(range(ds.n_tags))

    def test_children_partition_descending_tags(self, built):
        _, taxo = built
        for node in taxo.nodes():
            if node.is_leaf:
                continue
            child_tags: list[int] = []
            for child in node.children:
                child_tags.extend(int(t) for t in child.members)
            # Children are disjoint.
            assert len(child_tags) == len(set(child_tags))
            # general + children cover the node.
            covered = set(child_tags) | {int(t) for t in node.general_tags}
            assert covered == {int(t) for t in node.members}

    def test_levels_increase_down_the_tree(self, built):
        _, taxo = built
        for node in taxo.nodes():
            for child in node.children:
                assert child.level == node.level + 1

    def test_max_depth_respected(self, built):
        _, taxo = built
        assert taxo.depth <= 3

    def test_scores_attached(self, built):
        _, taxo = built
        for node in taxo.nodes():
            assert len(node.scores) == len(node.members)

    def test_deterministic(self, built):
        ds, _ = built
        rng = np.random.default_rng(0)
        emb = ball.random((ds.n_tags, 8), rng, scale=0.3)
        t1 = build_taxonomy(emb, ds.item_tags, k=3, delta=0.4, rng=0)
        t2 = build_taxonomy(emb, ds.item_tags, k=3, delta=0.4, rng=0)
        assert t1.render() == t2.render()


class TestTaxonomyStructure:
    def test_node_count(self, built):
        _, taxo = built
        assert taxo.n_nodes == sum(1 for _ in taxo.nodes())

    def test_level_partition(self, built):
        _, taxo = built
        level1 = taxo.level_partition(1)
        levels = [node.level for node in taxo.nodes()]
        assert len(level1) == levels.count(1)

    def test_tag_level_bounds(self, built):
        ds, taxo = built
        levels = taxo.tag_level()
        assert levels.shape == (ds.n_tags,)
        assert levels.min() >= 0 and levels.max() <= taxo.depth

    def test_ancestor_pairs_are_cross_level(self, built):
        _, taxo = built
        pairs = taxo.ancestor_pairs()
        for anc, desc in pairs:
            assert anc != desc

    def test_render_contains_levels(self, built):
        ds, taxo = built
        text = taxo.render(tag_names=ds.tag_names)
        assert "level-0" in text

    def test_single_node_taxonomy(self):
        node = TaxonomyNode(members=np.array([0, 1]), general_tags=np.array([0, 1]))
        taxo = Taxonomy(node, n_tags=2)
        assert taxo.depth == 0
        assert taxo.ancestor_pairs() == set()
