"""Differential tests: every vectorised hot path vs its pinned reference.

Each rewritten fast path keeps its naive implementation alive as a
``*_reference`` twin; these tests assert agreement to 1e-10 (exact for
integer outputs) on seeded synthetic data across shapes, including empty
and one-element edge cases.  This is the contract that makes the
``repro.bench`` speedups trustworthy.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data import SyntheticConfig, TripletSampler, generate, temporal_split
from repro.eval import (
    evaluate,
    evaluate_reference,
    ndcg_at_k,
    ndcg_at_k_reference,
    rank_topk,
    rank_topk_reference,
    recall_at_k,
    recall_at_k_reference,
)
from repro.manifolds import (
    PoincareBall,
    einstein_midpoint_batch,
    einstein_midpoint_batch_reference_np,
)
from repro.models.graph import BipartiteGraph
from repro.models.taxorec import (
    personalized_tag_weights,
    personalized_tag_weights_reference,
)
from repro.taxonomy import poincare_kmeans, poincare_kmeans_reference

TOL = 1e-10

ball = PoincareBall()


# ----------------------------------------------------------------------
# Ranking (top-K with explicit tiebreak)
# ----------------------------------------------------------------------
class TestRankTopK:
    @pytest.mark.parametrize(
        "n_rows,n_items,k",
        [(1, 1, 1), (3, 1, 1), (1, 7, 3), (5, 50, 10), (4, 200, 20), (2, 9, 9), (2, 5, 50)],
    )
    def test_matches_reference_random(self, n_rows, n_items, k):
        rng = np.random.default_rng(n_rows * 1000 + n_items + k)
        scores = rng.normal(size=(n_rows, n_items))
        np.testing.assert_array_equal(rank_topk(scores, k), rank_topk_reference(scores, k))

    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_matches_reference_with_heavy_ties(self, k):
        rng = np.random.default_rng(0)
        scores = np.round(rng.normal(size=(6, 40)), 0)  # many exact ties
        np.testing.assert_array_equal(rank_topk(scores, k), rank_topk_reference(scores, k))

    def test_all_tied_returns_ascending_ids(self):
        scores = np.zeros((2, 12))
        out = rank_topk(scores, 5)
        np.testing.assert_array_equal(out, np.tile(np.arange(5), (2, 1)))
        np.testing.assert_array_equal(out, rank_topk_reference(scores, 5))

    def test_masked_minus_inf_blocks(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(4, 30))
        scores[:, ::3] = -np.inf
        np.testing.assert_array_equal(rank_topk(scores, 8), rank_topk_reference(scores, 8))

    def test_tie_at_partition_boundary(self):
        # Exactly k-th and (k+1)-th scores tie: the lower id must win.
        scores = np.array([[5.0, 3.0, 3.0, 3.0, 1.0]])
        np.testing.assert_array_equal(rank_topk(scores, 2)[0], [0, 1])
        np.testing.assert_array_equal(rank_topk_reference(scores, 2)[0], [0, 1])

    def test_empty_rows(self):
        scores = np.zeros((0, 10))
        assert rank_topk(scores, 3).shape == (0, 3)
        assert rank_topk_reference(scores, 3).shape == (0, 3)


class TestMetricsDifferential:
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_recall_and_ndcg(self, k):
        rng = np.random.default_rng(7)
        topk = np.stack([rng.permutation(30)[:10] for _ in range(8)])
        positives = [
            rng.choice(30, size=rng.integers(0, 6), replace=False) for _ in range(8)
        ]
        assert recall_at_k(topk, positives, k) == pytest.approx(
            recall_at_k_reference(topk, positives, k), abs=TOL
        )
        assert ndcg_at_k(topk, positives, k) == pytest.approx(
            ndcg_at_k_reference(topk, positives, k), abs=TOL
        )

    def test_no_positives_at_all(self):
        topk = np.arange(6).reshape(2, 3)
        positives = [np.array([], dtype=np.int64)] * 2
        assert recall_at_k(topk, positives, 3) == recall_at_k_reference(topk, positives, 3) == 0.0
        assert ndcg_at_k(topk, positives, 3) == ndcg_at_k_reference(topk, positives, 3) == 0.0

    def test_single_user_single_item(self):
        topk = np.array([[0]])
        positives = [np.array([0])]
        assert recall_at_k(topk, positives, 1) == recall_at_k_reference(topk, positives, 1) == 1.0
        assert ndcg_at_k(topk, positives, 1) == ndcg_at_k_reference(topk, positives, 1) == 1.0


class _QuantizedScores:
    """Tie-heavy deterministic model for evaluator differential tests."""

    def __init__(self, n_users, n_items, seed=0, decimals=1):
        rng = np.random.default_rng(seed)
        self.scores = np.round(rng.normal(size=(n_users, n_items)), decimals)

    def score_users(self, users):
        return self.scores[np.asarray(users)]


class TestEvaluateDifferential:
    @pytest.mark.parametrize("on", ["test", "valid"])
    def test_matches_reference(self, tiny_split, on):
        ds = tiny_split.train
        model = _QuantizedScores(ds.n_users, ds.n_items, seed=3)
        fast = evaluate(model, tiny_split, on=on)
        slow = evaluate_reference(model, tiny_split, on=on)
        for metric in ("Recall@10", "Recall@20", "NDCG@10", "NDCG@20"):
            assert fast.get(metric) == pytest.approx(slow.get(metric), abs=TOL)

    def test_batching_invariant(self, tiny_split):
        ds = tiny_split.train
        model = _QuantizedScores(ds.n_users, ds.n_items, seed=5)
        a = evaluate(model, tiny_split, batch_users=7)
        b = evaluate(model, tiny_split, batch_users=512)
        for metric in ("Recall@10", "Recall@20", "NDCG@10", "NDCG@20"):
            assert a.get(metric) == b.get(metric)


# ----------------------------------------------------------------------
# Negative sampling
# ----------------------------------------------------------------------
class TestSamplerDifferential:
    def _forbidden(self, train):
        return set(zip(train.user_ids.tolist(), train.item_ids.tolist()))

    @pytest.mark.parametrize("n_each", [1, 5])
    def test_both_paths_honour_contract(self, n_each):
        train = generate(SyntheticConfig(n_users=25, n_items=40, seed=2))
        forbidden = self._forbidden(train)
        users = np.concatenate([train.user_ids[:60], np.array([0])])
        for method in ("sample_negatives", "sample_negatives_reference"):
            sampler = TripletSampler(train, seed=0)
            out = getattr(sampler, method)(users, n_each)
            assert out.shape == (len(users), n_each)
            assert out.dtype == np.int64
            for u, row in zip(users, out):
                for v in row:
                    assert (int(u), int(v)) not in forbidden

    def test_empty_users(self):
        train = generate(SyntheticConfig(n_users=10, n_items=12, seed=4))
        sampler = TripletSampler(train, seed=0)
        assert sampler.sample_negatives(np.array([], dtype=np.int64)).shape == (0, 1)
        assert sampler.sample_negatives_reference(np.array([], dtype=np.int64)).shape == (0, 1)


# ----------------------------------------------------------------------
# Einstein midpoint / tag aggregation
# ----------------------------------------------------------------------
class TestEinsteinMidpointDifferential:
    def test_matches_reference(self):
        rng = np.random.default_rng(6)
        klein = ball.proj(rng.normal(0.0, 0.3, size=(20, 5)))
        psi = (rng.random((50, 20)) < 0.2).astype(np.float64)
        fast = einstein_midpoint_batch(Tensor(klein), Tensor(psi)).data
        slow = einstein_midpoint_batch_reference_np(klein, psi)
        np.testing.assert_allclose(fast, slow, atol=TOL)

    def test_zero_weight_rows(self):
        rng = np.random.default_rng(8)
        klein = ball.proj(rng.normal(0.0, 0.3, size=(4, 3)))
        psi = np.zeros((3, 4))
        fast = einstein_midpoint_batch(Tensor(klein), Tensor(psi)).data
        slow = einstein_midpoint_batch_reference_np(klein, psi)
        np.testing.assert_allclose(fast, slow, atol=TOL)

    def test_single_row(self):
        klein = np.array([[0.1, 0.2], [0.0, -0.3]])
        psi = np.array([[1.0, 1.0]])
        fast = einstein_midpoint_batch(Tensor(klein), Tensor(psi)).data
        slow = einstein_midpoint_batch_reference_np(klein, psi)
        np.testing.assert_allclose(fast, slow, atol=TOL)


# ----------------------------------------------------------------------
# GCN propagation (values AND gradients)
# ----------------------------------------------------------------------
class TestGraphDifferential:
    @pytest.fixture(scope="class")
    def graph(self, tiny_split):
        return BipartiteGraph(tiny_split.train)

    def _embeddings(self, graph, seed=0):
        rng = np.random.default_rng(seed)
        u = Tensor(rng.normal(size=(graph.n_users, 6)), requires_grad=True)
        v = Tensor(rng.normal(size=(graph.n_items, 6)), requires_grad=True)
        return u, v

    @pytest.mark.parametrize("norm", ["sym", "mean"])
    def test_propagate_values(self, graph, norm):
        u, v = self._embeddings(graph)
        fast = getattr(graph, f"propagate_{norm}")(u, v)
        slow = getattr(graph, f"propagate_{norm}_reference")(u, v)
        np.testing.assert_allclose(fast[0].data, slow[0].data, atol=TOL)
        np.testing.assert_allclose(fast[1].data, slow[1].data, atol=TOL)

    def test_propagate_mean_reference_gradients(self, graph):
        grads = {}
        for propagate in (graph.propagate_mean, graph.propagate_mean_reference):
            u, v = self._embeddings(graph, seed=2)
            out_u, out_v = propagate(u, v)
            ((out_u * out_u).sum() + (out_v * out_v).sum()).backward()
            grads[propagate.__name__] = (u.grad.copy(), v.grad.copy())
        for fast_arr, slow_arr in zip(
            grads["propagate_mean"], grads["propagate_mean_reference"]
        ):
            np.testing.assert_allclose(fast_arr, slow_arr, atol=TOL)

    def test_propagate_sym_reference_gradients(self, graph):
        grads = {}
        for propagate in (graph.propagate_sym, graph.propagate_sym_reference):
            u, v = self._embeddings(graph, seed=3)
            out_u, out_v = propagate(u, v)
            ((out_u * out_u).sum() + (out_v * out_v).sum()).backward()
            grads[propagate.__name__] = (u.grad.copy(), v.grad.copy())
        for fast_arr, slow_arr in zip(
            grads["propagate_sym"], grads["propagate_sym_reference"]
        ):
            np.testing.assert_allclose(fast_arr, slow_arr, atol=TOL)

    @pytest.mark.parametrize("norm", ["sym", "mean"])
    def test_residual_gcn_values_and_gradients(self, graph, norm):
        grads = {}
        for reference in (False, True):
            u, v = self._embeddings(graph, seed=1)
            out_u, out_v = graph.residual_gcn(u, v, n_layers=2, norm=norm, reference=reference)
            ((out_u * out_u).sum() + (out_v * out_v).sum()).backward()
            grads[reference] = (out_u.data, out_v.data, u.grad.copy(), v.grad.copy())
        for fast_arr, slow_arr in zip(grads[False], grads[True]):
            np.testing.assert_allclose(fast_arr, slow_arr, atol=TOL)

    def test_zero_layers_identity(self, graph):
        u, v = self._embeddings(graph)
        out_u, out_v = graph.residual_gcn(u, v, n_layers=0)
        np.testing.assert_array_equal(out_u.data, u.data)
        np.testing.assert_array_equal(out_v.data, v.data)


# ----------------------------------------------------------------------
# Poincaré pairwise distances and k-means
# ----------------------------------------------------------------------
class TestPoincareDistanceDifferential:
    def test_matrix_matches_broadcast_reference(self):
        rng = np.random.default_rng(11)
        x = ball.proj(rng.normal(0.0, 0.3, size=(40, 6)))
        y = ball.proj(rng.normal(0.0, 0.3, size=(17, 6)))
        np.testing.assert_allclose(
            ball.dist_matrix_np(x, y), ball.dist_matrix_reference_np(x, y), atol=TOL
        )

    def test_empty_sets(self):
        x = np.zeros((0, 4))
        y = ball.proj(np.random.default_rng(0).normal(0.0, 0.2, size=(3, 4)))
        assert ball.dist_matrix_np(x, y).shape == (0, 3)
        assert ball.dist_matrix_np(y, x).shape == (3, 0)

    def test_single_pair(self):
        x = np.array([[0.1, 0.2]])
        y = np.array([[-0.3, 0.05]])
        np.testing.assert_allclose(
            ball.dist_matrix_np(x, y), ball.dist_matrix_reference_np(x, y), atol=TOL
        )


class TestKMeansDifferential:
    def _blobs(self, seed=0, n=30, d=3):
        rng = np.random.default_rng(seed)
        a = ball.proj(rng.normal(0.0, 0.05, size=(n, d)) + 0.4)
        b = ball.proj(rng.normal(0.0, 0.05, size=(n, d)) - 0.4)
        return np.concatenate([a, b])

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_shared_init_matches_reference(self, k):
        pts = self._blobs(seed=k)
        rng = np.random.default_rng(99)
        init = pts[rng.choice(len(pts), size=k, replace=False)]
        fast_labels, fast_cents = poincare_kmeans(pts, k, rng=0, init_centroids=init)
        slow_labels, slow_cents = poincare_kmeans_reference(pts, k, rng=0, init_centroids=init)
        np.testing.assert_array_equal(fast_labels, slow_labels)
        np.testing.assert_allclose(fast_cents, slow_cents, atol=TOL)

    def test_seeded_full_path_matches_reference(self):
        pts = self._blobs(seed=5)
        fast_labels, fast_cents = poincare_kmeans(pts, 2, rng=3)
        slow_labels, slow_cents = poincare_kmeans_reference(pts, 2, rng=3)
        np.testing.assert_array_equal(fast_labels, slow_labels)
        np.testing.assert_allclose(fast_cents, slow_cents, atol=TOL)

    def test_empty_and_single_point(self):
        empty_labels, empty_cents = poincare_kmeans(np.zeros((0, 3)), 2)
        assert len(empty_labels) == 0 and empty_cents.shape == (0, 3)
        one = np.array([[0.1, 0.0, 0.0]])
        labels, cents = poincare_kmeans(one, 3, rng=0)
        ref_labels, ref_cents = poincare_kmeans_reference(one, 3, rng=0)
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_allclose(cents, ref_cents, atol=TOL)


# ----------------------------------------------------------------------
# Personalised tag weights
# ----------------------------------------------------------------------
class TestAlphaDifferential:
    def test_matches_reference(self, tiny_dataset):
        np.testing.assert_allclose(
            personalized_tag_weights(tiny_dataset),
            personalized_tag_weights_reference(tiny_dataset),
            atol=TOL,
        )

    def test_on_split_train(self, tiny_split):
        np.testing.assert_allclose(
            personalized_tag_weights(tiny_split.train),
            personalized_tag_weights_reference(tiny_split.train),
            atol=TOL,
        )


# ----------------------------------------------------------------------
# Streaming fold-in solvers
# ----------------------------------------------------------------------
class TestFoldInDifferential:
    """Routed fold-in solvers vs the pure-numpy twin, per score-fn family."""

    def _payload(self, score_fn: str, seed: int = 0):
        rng = np.random.default_rng(seed)
        n_items, d = 20, 6
        if score_fn in ("neg_sq_lorentz", "two_channel_lorentz"):
            spatial = rng.normal(0.0, 0.5, size=(n_items, d - 1))
            rows = np.concatenate(
                [np.sqrt(1.0 + (spatial**2).sum(axis=1, keepdims=True)), spatial], axis=1
            )
        else:
            rows = rng.normal(0.0, 0.5, size=(n_items, d))
        arrays = {"item": rows, "user": rows[:7].copy()}
        if score_fn == "dot_bias":
            arrays["item_bias"] = rng.normal(0.0, 0.2, size=n_items)
        if score_fn == "dot_aspect":
            arrays["item_aspect"] = rng.normal(0.0, 0.5, size=(n_items, d))
            arrays["user_aspect"] = rng.normal(0.0, 0.5, size=(7, d))
            arrays["aspect_weight"] = np.asarray(0.5)
        if score_fn.startswith("two_channel"):
            arrays = {
                "item_ir": rows,
                "item_tg": rows[::-1].copy(),
                "user_ir": rows[:7].copy(),
                "user_tg": rows[5:12].copy(),
                "alpha": rng.random(7),
            }
        return arrays

    @pytest.mark.parametrize(
        "score_fn",
        [
            "neg_sq_euclid",
            "neg_sq_lorentz",
            "dot",
            "dot_bias",
            "dot_aspect",
            "two_channel_euclid",
            "two_channel_lorentz",
        ],
    )
    def test_matches_reference_with_and_without_prior(self, score_fn):
        from repro.stream import fold_in_user, fold_in_user_reference, origin_rows

        arrays = self._payload(score_fn)
        item_ids = np.array([0, 3, 7, 11], dtype=np.int64)
        prior = origin_rows(score_fn, arrays, side="user")
        for kwargs in (
            {"prior": None, "prior_weight": 0.0},
            {"prior": prior, "prior_weight": 4.0},
        ):
            fast = fold_in_user(score_fn, arrays, item_ids, **kwargs)
            slow = fold_in_user_reference(score_fn, arrays, item_ids, **kwargs)
            assert set(fast) == set(slow)
            for key in fast:
                np.testing.assert_allclose(
                    np.asarray(fast[key]), np.asarray(slow[key]), atol=TOL, err_msg=key
                )

    def test_single_item_and_empty_prior_paths(self):
        from repro.stream import fold_in_user, fold_in_user_reference

        arrays = self._payload("neg_sq_lorentz", seed=4)
        one = np.array([5], dtype=np.int64)
        np.testing.assert_allclose(
            fold_in_user("neg_sq_lorentz", arrays, one)["user"],
            fold_in_user_reference("neg_sq_lorentz", arrays, one)["user"],
            atol=TOL,
        )
        prior = {"user": arrays["item"][2].copy()}
        empty = np.array([], dtype=np.int64)
        np.testing.assert_array_equal(
            fold_in_user("neg_sq_lorentz", arrays, empty, prior=prior, prior_weight=3.0)["user"],
            fold_in_user_reference(
                "neg_sq_lorentz", arrays, empty, prior=prior, prior_weight=3.0
            )["user"],
        )
