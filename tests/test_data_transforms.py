"""Dataset preprocessing transforms."""

import numpy as np
import pytest

from repro.data import InteractionDataset, deduplicate, k_core, relabel, subsample_users


def make(users, items, times=None):
    users = np.asarray(users)
    items = np.asarray(items)
    return InteractionDataset(
        n_users=int(users.max()) + 1,
        n_items=int(items.max()) + 1,
        n_tags=2,
        user_ids=users,
        item_ids=items,
        timestamps=np.asarray(times if times is not None else np.arange(len(users)), dtype=float),
        item_tags=np.zeros((int(items.max()) + 1, 2)),
    )


class TestDeduplicate:
    def test_keeps_first_by_time(self):
        ds = make([0, 0, 0], [1, 1, 2], times=[5.0, 1.0, 0.0])
        out = deduplicate(ds)
        assert out.n_interactions == 2
        # The kept (0, 1) interaction is the earlier one (t=1).
        kept_time = out.timestamps[out.item_ids == 1]
        assert kept_time[0] == 1.0

    def test_no_duplicates_noop(self):
        ds = make([0, 1], [0, 1])
        assert deduplicate(ds).n_interactions == 2


class TestKCore:
    def test_drops_sparse_entities(self):
        # User 2 has one interaction; items 3 similarly.
        users = [0, 0, 0, 1, 1, 1, 2]
        items = [0, 1, 2, 0, 1, 2, 3]
        out = k_core(make(users, items), k=2)
        assert out.n_users == 2  # user 2 dropped
        assert out.n_items == 3  # item 3 dropped

    def test_cascading_removal(self):
        # Removing user 2 leaves item 4 orphaned → also removed.
        users = [0, 0, 1, 1, 2, 2]
        items = [0, 1, 0, 1, 0, 4]
        out = k_core(make(users, items), k=2)
        assert 4 not in set(out.item_ids.tolist())

    def test_k1_keeps_everything(self):
        ds = make([0, 1], [0, 1])
        out = k_core(ds, k=1)
        assert out.n_interactions == 2

    def test_ids_contiguous_after_filter(self):
        users = [0, 0, 2, 2]
        items = [0, 1, 0, 1]
        out = k_core(make(users, items), k=2)
        assert set(out.user_ids.tolist()) == {0, 1}


class TestRelabel:
    def test_mapping_returned(self):
        ds = make([0, 5], [2, 7])
        out, maps = relabel(ds)
        assert out.n_users == 2
        np.testing.assert_array_equal(maps["users"], [0, 5])
        np.testing.assert_array_equal(maps["items"], [2, 7])

    def test_item_tags_realigned(self):
        ds = make([0, 0], [1, 3])
        ds.item_tags[1, 0] = 1.0
        ds.item_tags[3, 1] = 1.0
        out, maps = relabel(ds)
        assert out.item_tags.shape == (2, 2)
        assert out.item_tags[0, 0] == 1.0  # old item 1 → new 0
        assert out.item_tags[1, 1] == 1.0  # old item 3 → new 1


class TestSubsample:
    def test_respects_count(self):
        ds = make(list(range(10)), [0] * 10)
        out = subsample_users(ds, 4, seed=0)
        assert out.n_users == 4

    def test_noop_when_enough(self):
        ds = make([0, 1], [0, 1])
        assert subsample_users(ds, 5) is ds

    def test_deterministic(self):
        ds = make(list(range(10)), list(range(10)))
        a = subsample_users(ds, 3, seed=1)
        b = subsample_users(ds, 3, seed=1)
        np.testing.assert_array_equal(a.user_ids, b.user_ids)
