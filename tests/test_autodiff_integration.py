"""Integration tests: the autodiff engine training small end-to-end systems."""

import numpy as np
import pytest

from repro.autodiff import Module, Parameter, Tensor, binary_cross_entropy_with_logits
from repro.optim import Adam, SGD


class TinyMLP(Module):
    def __init__(self, rng, d_in=4, hidden=16):
        self.W1 = Parameter(rng.normal(0, 0.5, size=(d_in, hidden)))
        self.b1 = Parameter(np.zeros(hidden))
        self.W2 = Parameter(rng.normal(0, 0.5, size=(hidden, 1)))
        self.b2 = Parameter(np.zeros(1))

    def forward(self, x: Tensor) -> Tensor:
        h = (x @ self.W1 + self.b1).relu()
        return (h @ self.W2 + self.b2)[..., 0]


class TestEndToEndLearning:
    def test_mlp_learns_xor_like_boundary(self, rng):
        x = rng.normal(size=(200, 4))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(float)
        model = TinyMLP(rng)
        opt = Adam(list(model.parameters()), lr=0.02)
        first_loss = None
        for step in range(300):
            opt.zero_grad()
            loss = binary_cross_entropy_with_logits(model.forward(Tensor(x)), y)
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.5 * first_loss
        preds = (model.forward(Tensor(x)).data > 0).astype(float)
        assert (preds == y).mean() > 0.8

    def test_linear_regression_exact(self, rng):
        true_w = np.array([2.0, -3.0, 0.5])
        x = rng.normal(size=(100, 3))
        y = x @ true_w
        w = Parameter(np.zeros(3))
        opt = SGD([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            pred = Tensor(x) @ w
            ((pred - Tensor(y)) ** 2).mean().backward()
            opt.step()
        np.testing.assert_allclose(w.data, true_w, atol=1e-4)

    def test_embedding_gradient_sparsity(self, rng):
        """Only looked-up rows receive gradient."""
        table = Parameter(rng.normal(size=(10, 4)))
        idx = np.array([1, 3, 3])
        (table.take_rows(idx) ** 2).sum().backward()
        touched = np.abs(table.grad).sum(axis=1) > 0
        np.testing.assert_array_equal(np.nonzero(touched)[0], [1, 3])

    def test_repeated_rows_accumulate(self, rng):
        table = Parameter(np.ones((5, 2)))
        idx = np.array([2, 2, 2])
        table.take_rows(idx).sum().backward()
        np.testing.assert_allclose(table.grad[2], [3.0, 3.0])

    def test_no_grad_inference_builds_no_graph(self, rng):
        from repro.autodiff import no_grad

        w = Parameter(rng.normal(size=(4, 4)))
        with no_grad():
            out = Tensor(rng.normal(size=(2, 4))) @ w
        assert out._vjp is None
        assert not out.requires_grad
