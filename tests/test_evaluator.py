"""End-to-end ranking evaluation over temporal splits."""

import numpy as np
import pytest

from repro.data import InteractionDataset, temporal_split
from repro.eval import EvalResult, evaluate


class OracleModel:
    """Scores the user's true test items highest."""

    def __init__(self, split, n_items):
        self._test_items = split.test.items_of_user()
        self.n_items = n_items

    def score_users(self, users):
        scores = np.zeros((len(users), self.n_items))
        for i, u in enumerate(users):
            scores[i, self._test_items[u]] = 10.0
        return scores


class AntiOracle(OracleModel):
    def score_users(self, users):
        return -super().score_users(users)


class PopularityModel:
    def __init__(self, train, n_items):
        self.pop = np.bincount(train.item_ids, minlength=n_items).astype(float)

    def score_users(self, users):
        return np.tile(self.pop, (len(users), 1))


@pytest.fixture(scope="module")
def ds_split(tiny_dataset):
    return tiny_dataset, temporal_split(tiny_dataset)


class TestEvaluate:
    def test_oracle_scores_one(self, ds_split):
        ds, split = ds_split
        result = evaluate(OracleModel(split, ds.n_items), split, on="test")
        assert result.recall_at_20 == pytest.approx(1.0)
        assert result.ndcg_at_10 > 0.9

    def test_anti_oracle_scores_zero(self, ds_split):
        ds, split = ds_split
        result = evaluate(AntiOracle(split, ds.n_items), split, on="test")
        assert result.recall_at_10 == 0.0

    def test_popularity_beats_nothing_but_is_valid(self, ds_split):
        ds, split = ds_split
        result = evaluate(PopularityModel(split.train, ds.n_items), split, on="test")
        assert 0.0 <= result.recall_at_10 <= 1.0

    def test_valid_mode_masks_only_train(self, ds_split):
        ds, split = ds_split
        result = evaluate(OracleModel(split, ds.n_items), split, on="valid")
        # Oracle on valid gets 0 because it boosts *test* items only.
        assert isinstance(result, EvalResult)

    def test_invalid_mode_rejected(self, ds_split):
        ds, split = ds_split
        with pytest.raises(ValueError):
            evaluate(OracleModel(split, ds.n_items), split, on="train")

    def test_train_items_never_recommended(self, ds_split):
        """A model that scores train items highest must still score 0 —
        the evaluator masks them out before ranking."""
        ds, split = ds_split

        class TrainOracle:
            def __init__(self):
                self.items = split.train.items_of_user()

            def score_users(self, users):
                scores = np.zeros((len(users), ds.n_items))
                for i, u in enumerate(users):
                    scores[i, self.items[u]] = 10.0
                return scores

        result = evaluate(TrainOracle(), split, on="test")
        # Masked train items drop out; remaining scores are ties at 0, so
        # recall equals chance level, far below 1.
        assert result.recall_at_10 < 0.5

    def test_batching_invariance(self, ds_split):
        ds, split = ds_split
        model = PopularityModel(split.train, ds.n_items)
        r_all = evaluate(model, split, on="test", batch_users=10_000)
        r_small = evaluate(model, split, on="test", batch_users=7)
        assert r_all.recall_at_10 == pytest.approx(r_small.recall_at_10)

    def test_result_row_and_mean(self, ds_split):
        ds, split = ds_split
        result = evaluate(OracleModel(split, ds.n_items), split, on="test")
        assert len(result.as_row()) == 4
        assert result.mean() > 0
        assert result.get("Recall@20") == result.recall_at_20
