"""Parameter/Module container semantics."""

import numpy as np
import pytest

from repro.autodiff import Module, Parameter, Tensor
from repro.manifolds import PoincareBall


class Inner(Module):
    def __init__(self):
        self.w = Parameter(np.ones((2, 2)))


class Outer(Module):
    def __init__(self):
        self.a = Parameter(np.zeros(3))
        self.inner = Inner()
        self.layers = [Parameter(np.ones(1)), Inner()]


class TestParameter:
    def test_requires_grad_by_default(self):
        assert Parameter(np.ones(2)).requires_grad

    def test_carries_manifold(self):
        ball = PoincareBall()
        p = Parameter(np.zeros((2, 2)), manifold=ball)
        assert p.manifold is ball

    def test_default_manifold_is_none(self):
        assert Parameter(np.zeros(2)).manifold is None


class TestModule:
    def test_collects_direct_nested_and_listed(self):
        m = Outer()
        params = list(m.parameters())
        assert len(params) == 4  # a, inner.w, layers[0], layers[1].w

    def test_no_duplicates_for_shared_parameter(self):
        m = Outer()
        m.alias = m.a  # same object twice
        assert len(list(m.parameters())) == 4

    def test_num_parameters(self):
        assert Outer().num_parameters() == 3 + 4 + 1 + 4

    def test_zero_grad(self):
        m = Outer()
        (m.a.sum() * 2.0).backward()
        assert m.a.grad is not None
        m.zero_grad()
        assert m.a.grad is None

    def test_state_dict_roundtrip(self):
        m1, m2 = Outer(), Outer()
        m1.a.data[:] = 7.0
        m1.inner.w.data[:] = 3.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m2.a.data, m1.a.data)
        np.testing.assert_array_equal(m2.inner.w.data, m1.inner.w.data)

    def test_state_dict_copies(self):
        m = Outer()
        state = m.state_dict()
        m.a.data[:] = 99.0
        assert state["a"].sum() == 0.0

    def test_load_rejects_shape_mismatch(self):
        m = Outer()
        with pytest.raises(ValueError):
            m.load_state_dict({"a": np.zeros(5)})


class TestListHeldParameters:
    """Parameters inside list/tuple attributes must round-trip.

    Regression for the latent snapshot bug: ``state_dict`` used to skip
    container attributes entirely, so models with per-layer weight lists
    (NGCF) restored stale values from "best" snapshots.
    """

    def test_state_dict_includes_indexed_entries(self):
        state = Outer().state_dict()
        assert set(state) == {"a", "inner.w", "layers.0", "layers.1.w"}

    def test_indexed_roundtrip(self):
        m1, m2 = Outer(), Outer()
        m1.layers[0].data[:] = 5.0
        m1.layers[1].w.data[:] = -2.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m2.layers[0].data, m1.layers[0].data)
        np.testing.assert_array_equal(m2.layers[1].w.data, m1.layers[1].w.data)

    def test_indexed_entries_are_copies(self):
        m = Outer()
        state = m.state_dict()
        m.layers[0].data[:] = 42.0
        assert state["layers.0"].sum() == 1.0

    def test_load_rejects_indexed_shape_mismatch(self):
        m = Outer()
        with pytest.raises(ValueError):
            m.load_state_dict({"layers.0": np.zeros(9)})

    def test_tuple_attributes_covered(self):
        class WithTuple(Module):
            def __init__(self):
                self.pair = (Parameter(np.ones(2)), Parameter(np.zeros(3)))

        m1, m2 = WithTuple(), WithTuple()
        assert set(m1.state_dict()) == {"pair.0", "pair.1"}
        m1.pair[1].data[:] = 4.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m2.pair[1].data, m1.pair[1].data)
