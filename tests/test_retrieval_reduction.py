"""Score-fn reductions vs the frozen scorers, kernel by kernel.

The contract of :mod:`repro.retrieval.reduction`: for every reducible
score-fn, ``finish(q·x + b) + offset`` recovers the frozen kernel's
scores — bit-for-bit for the pure inner-product family (``dot``,
``dot_bias``), and to float64 rearrangement tolerance for the reductions
that algebraically expand a distance (the expansion reorders the same
flops, so agreement is ~1e-13 relative, far below any ranking-relevant
gap).  Unsupported and unknown score-fns must fail *typed* so candidate
indexes can fall back to exact scoring instead of guessing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import Reduction, ReductionUnsupported, reduce_score_fn, reducible_score_fns
from repro.serve.scoring import FrozenScorer

REDUCIBLE = (
    "dot",
    "dot_bias",
    "dot_aspect",
    "neg_sq_euclid",
    "neg_sq_lorentz",
    "two_channel_euclid",
)
UNSUPPORTED = ("two_channel_lorentz", "dense")
# dot/dot_bias reductions *are* the frozen kernel (same matmul, same
# bias broadcast), so they must agree bit-for-bit; the rest algebraically
# rearrange float64 flops.
BITWISE = ("dot", "dot_bias")


def _payload(score_fn: str, **kw) -> dict:
    from tests.conftest import make_frozen_payload

    return make_frozen_payload(score_fn, **kw)


def _exact_and_reduced(score_fn: str, users: np.ndarray):
    payload = _payload(score_fn, seed=3)
    scorer = FrozenScorer(score_fn, payload)
    exact = np.asarray(scorer.score_users(users), dtype=np.float64)
    reduction = reduce_score_fn(score_fn, payload)
    queries, offsets = reduction.query(users)
    reduced = reduction.reduced_scores(queries)
    return exact, reduction.finish(reduced, offsets), reduction


def test_registry_matches_frozen_scorer_coverage():
    from repro.serve.scoring import SCORE_FNS

    assert set(REDUCIBLE) == set(reducible_score_fns())
    assert set(REDUCIBLE) | set(UNSUPPORTED) == set(SCORE_FNS)


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_reduction_recovers_frozen_scores(score_fn):
    users = np.arange(24, dtype=np.int64)
    exact, recovered, _ = _exact_and_reduced(score_fn, users)
    if score_fn in BITWISE:
        np.testing.assert_array_equal(recovered, exact)
    else:
        np.testing.assert_allclose(recovered, exact, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_reduced_ranking_matches_exact_ranking(score_fn):
    """Ranking by the reduced score == ranking by the exact score.

    This is the property candidate indexes rely on: ``finish`` is
    monotone and ``offset`` is per-user constant, so the reduced argsort
    (with id tiebreak) equals the exact argsort for every user.
    """
    users = np.arange(24, dtype=np.int64)
    exact, _, reduction = _exact_and_reduced(score_fn, users)
    queries, _ = reduction.query(users)
    reduced = reduction.reduced_scores(queries)
    ids = np.arange(reduction.n_items)
    for row in range(len(users)):
        by_reduced = np.lexsort((ids, -reduced[row]))
        by_exact = np.lexsort((ids, -exact[row]))
        np.testing.assert_array_equal(by_reduced, by_exact, err_msg=score_fn)


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_single_row_query_is_bit_identical_to_batched(score_fn):
    """The GEMV→GEMM padding: one-user queries rank by the same bits."""
    users = np.arange(8, dtype=np.int64)
    payload = _payload(score_fn, seed=5)
    reduction = reduce_score_fn(score_fn, payload)
    queries, _ = reduction.query(users)
    batched = reduction.reduced_scores(queries)
    for row in range(len(users)):
        single = reduction.reduced_scores(queries[row : row + 1])
        np.testing.assert_array_equal(single[0], batched[row], err_msg=score_fn)


@pytest.mark.parametrize("score_fn", REDUCIBLE)
def test_item_arrays_are_contiguous_float64(score_fn):
    reduction = reduce_score_fn(score_fn, _payload(score_fn))
    assert isinstance(reduction, Reduction)
    assert reduction.item_vectors.dtype == np.float64
    assert reduction.item_vectors.flags["C_CONTIGUOUS"]
    assert reduction.item_bias.shape == (reduction.n_items,)


@pytest.mark.parametrize("score_fn", UNSUPPORTED)
def test_unsupported_score_fns_raise_typed(score_fn):
    payload = _payload(score_fn)
    with pytest.raises(ReductionUnsupported) as excinfo:
        reduce_score_fn(score_fn, payload)
    assert excinfo.value.score_fn == score_fn
    assert excinfo.value.reason


def test_unknown_score_fn_raises_typed():
    with pytest.raises(ReductionUnsupported) as excinfo:
        reduce_score_fn("dot_v99", {})
    assert excinfo.value.score_fn == "dot_v99"


def test_lorentz_finish_clamp_is_inactive_on_hyperboloid_points():
    """On-manifold rows: -⟨u,v⟩_L = cosh(d) >= 1, so the arccosh clamp's
    flat region is only ever the query point itself."""
    payload = _payload("neg_sq_lorentz", seed=9)
    reduction = reduce_score_fn("neg_sq_lorentz", payload)
    queries, _ = reduction.query(np.arange(24, dtype=np.int64))
    reduced = reduction.reduced_scores(queries)
    assert np.all(-reduced >= 1.0 - 1e-9)
