"""The ``repro export`` / ``repro serve`` subcommands, end to end.

``export`` is exercised in-process through ``repro.cli.main`` (the real
dispatch path); ``serve`` is exercised as a genuine subprocess bound to
an ephemeral port with ``--max-requests``, which is how the smoke script
and CI drive it.
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.serve import load_artifact
from repro.serve.cli import export_main, serve_main

REPO = Path(__file__).resolve().parents[1]


class TestExportCLI:
    def test_export_from_run_dir(self, tiny_run_dir, tmp_path, capsys):
        out = tmp_path / "cml.npz"
        assert main(["export", str(tiny_run_dir), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "exported CML" in captured.out
        assert "score_fn=neg_sq_euclid" in captured.out
        artifact = load_artifact(out)
        assert artifact.model_name == "CML"

    def test_export_explicit_checkpoint_with_best(self, tiny_run_dir, tmp_path):
        out = tmp_path / "best.npz"
        ckpt = tiny_run_dir / "checkpoint_0001.npz"
        assert export_main([str(ckpt), "--out", str(out), "--best"]) == 0
        assert load_artifact(out).meta["source"] == str(ckpt)

    def test_missing_source_exits_2(self, tmp_path, capsys):
        code = export_main([str(tmp_path / "nope.npz"), "--out", str(tmp_path / "o.npz")])
        assert code == 2
        assert "export failed" in capsys.readouterr().err

    def test_non_checkpoint_npz_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "weights.npz"
        np.savez(bad, w=np.zeros(3))
        assert export_main([str(bad), "--out", str(tmp_path / "o.npz")]) == 2
        assert "export failed" in capsys.readouterr().err


class TestServeCLI:
    def test_bad_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"not an artifact")
        assert serve_main([str(bad)]) == 2
        assert "cannot serve" in capsys.readouterr().err

    def test_serve_subprocess_answers_requests(self, tiny_run_dir, tmp_path):
        artifact = tmp_path / "cml.npz"
        assert export_main([str(tiny_run_dir), "--out", str(artifact)]) == 0
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(artifact),
                "--port", "0", "--max-requests", "3", "--index-k", "12",
            ],
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving CML (score_fn=neg_sq_euclid) on http://" in banner
            base = banner.strip().rsplit(" on ", 1)[1]
            with urllib.request.urlopen(f"{base}/health", timeout=10) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok" and health["model"] == "CML"
            with urllib.request.urlopen(f"{base}/recommend?user=0&k=5", timeout=10) as response:
                recommendation = json.loads(response.read())
            assert len(recommendation["items"]) == 5
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as response:
                stats = json.loads(response.read())
            assert stats["index"] == {"k": 12, "exclude_seen": True}
        finally:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0, process.stderr.read()


class TestDispatch:
    def test_export_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["export", "--help"])
        assert excinfo.value.code == 0

    def test_serve_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0

    def test_top_level_usage_mentions_subcommands(self):
        from repro.cli import build_parser

        assert "serve" in (build_parser().epilog or "")
