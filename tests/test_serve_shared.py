"""Shared mmap bundles + atomic publish: the zero-copy deployment layer.

A shared bundle must be a perfect container swap — same validation, same
typed failures, bit-identical serving — with its arrays actually
memory-mapped read-only (that is the whole point: N workers, one
physical copy).  ``publish_artifact`` must refuse to clobber real files
and must flip symlinks atomically; ``artifact_fingerprint`` must move
exactly when the resolved target moves.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    ArtifactError,
    RecommenderService,
    SchemaMismatchError,
    UnknownScoreFnError,
    artifact_fingerprint,
    export_payload,
    export_shared,
    load_artifact,
    load_shared,
    publish_artifact,
)


@pytest.fixture(scope="module")
def npz_path(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(31)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("shared") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return path


@pytest.fixture()
def bundle(npz_path, tmp_path):
    return export_shared(npz_path, tmp_path / "bundle")


class TestBundleRoundtrip:
    def test_arrays_and_meta_survive_exactly(self, npz_path, bundle):
        source = load_artifact(npz_path)
        loaded = load_shared(bundle)
        assert loaded.meta == source.meta
        assert loaded.tag_names == source.tag_names
        assert set(loaded.arrays) == set(source.arrays)
        for name in source.arrays:
            np.testing.assert_array_equal(np.asarray(loaded.arrays[name]),
                                          np.asarray(source.arrays[name]))
        np.testing.assert_array_equal(loaded.seen_indptr, source.seen_indptr)
        np.testing.assert_array_equal(loaded.seen_indices, source.seen_indices)

    def test_arrays_are_mmap_backed_and_read_only(self, bundle):
        loaded = load_shared(bundle)
        for name, arr in loaded.arrays.items():
            assert isinstance(arr, np.memmap), f"{name} is not memory-mapped"
            with pytest.raises((ValueError, OSError)):
                arr[tuple(0 for _ in arr.shape)] = 0.0

    def test_load_artifact_dispatches_on_directory(self, bundle):
        loaded = load_artifact(bundle)
        assert loaded.model_name == "Dense"

    def test_serving_from_bundle_bit_identical_to_npz(self, npz_path, bundle):
        from_npz = RecommenderService(npz_path, cache_size=0)
        from_bundle = RecommenderService(bundle, cache_size=0)
        for user in range(0, from_npz.n_users, 5):
            ref = from_npz.recommend(user, k=10)
            got = from_bundle.recommend(user, k=10)
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1], ref[1])

    def test_materialised_load_is_plain_arrays(self, bundle):
        loaded = load_shared(bundle, mmap=False)
        assert not any(isinstance(a, np.memmap) for a in loaded.arrays.values())


class TestBundleFailureModes:
    def test_missing_meta_is_artifact_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ArtifactError, match="not a shared artifact bundle"):
            load_shared(empty)

    def test_unparseable_meta_is_artifact_error(self, bundle):
        (bundle / "meta.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="unparseable"):
            load_shared(bundle)

    def test_wrong_schema_is_schema_mismatch(self, bundle):
        meta = json.loads((bundle / "meta.json").read_text(encoding="utf-8"))
        meta["schema"] = "repro.model/v999"
        (bundle / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(SchemaMismatchError, match="v999"):
            load_shared(bundle)

    def test_unknown_score_fn_is_typed(self, bundle):
        meta = json.loads((bundle / "meta.json").read_text(encoding="utf-8"))
        meta["score_fn"] = "warp_drive"
        (bundle / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(UnknownScoreFnError, match="warp_drive"):
            load_shared(bundle)

    def test_missing_array_fails_validation(self, bundle):
        (bundle / "arrays" / "scores.npy").unlink()
        with pytest.raises((SchemaMismatchError, ArtifactError)):
            load_shared(bundle)

    def test_truncated_array_is_artifact_error(self, bundle):
        path = bundle / "arrays" / "scores.npy"
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises((ArtifactError, SchemaMismatchError)):
            load_shared(bundle)


class TestPublishAndFingerprint:
    def test_publish_creates_and_flips_symlink(self, bundle, npz_path, tmp_path):
        link = tmp_path / "current"
        publish_artifact(bundle, link)
        assert link.is_symlink() and link.resolve() == bundle.resolve()
        fp_before = artifact_fingerprint(link)
        publish_artifact(npz_path, link)
        assert link.resolve() == npz_path.resolve()
        assert artifact_fingerprint(link) != fp_before

    def test_fingerprint_stable_without_changes(self, bundle, tmp_path):
        link = tmp_path / "current"
        publish_artifact(bundle, link)
        assert artifact_fingerprint(link) == artifact_fingerprint(link)

    def test_refuses_to_clobber_regular_file(self, bundle, tmp_path):
        target = tmp_path / "current"
        target.write_text("precious data", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not a symlink"):
            publish_artifact(bundle, target)
        assert target.read_text(encoding="utf-8") == "precious data"

    def test_missing_target_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            publish_artifact(tmp_path / "ghost", tmp_path / "current")

    def test_serving_through_link_works(self, bundle, tmp_path):
        link = tmp_path / "current"
        publish_artifact(bundle, link)
        service = RecommenderService(link)
        items, _ = service.recommend(0, k=5)
        assert len(items) == 5
