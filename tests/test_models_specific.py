"""Model-specific invariants beyond the shared smoke tests."""

import numpy as np
import pytest

from repro.models import (
    AGCN,
    AMF,
    BPRMF,
    CML,
    CMLF,
    HGCF,
    LRML,
    NMF,
    SML,
    HyperML,
    LightGCN,
    TrainConfig,
    TransCF,
)

CFG = dict(dim=16, tag_dim=4, epochs=3, batch_size=256, seed=0)


class TestCMLFamily:
    def test_cml_embeddings_clipped_to_unit_ball(self, tiny_split):
        m = CML(tiny_split.train, TrainConfig(lr=0.5, **CFG))
        m.fit(tiny_split)
        assert np.linalg.norm(m.user_emb.data, axis=1).max() <= 1.0 + 1e-9
        assert np.linalg.norm(m.item_emb.data, axis=1).max() <= 1.0 + 1e-9

    def test_cml_scores_are_negative_sq_distances(self, tiny_split):
        m = CML(tiny_split.train, TrainConfig(**CFG))
        scores = m.score_users(np.array([0]))
        d2 = ((m.user_emb.data[0] - m.item_emb.data) ** 2).sum(axis=1)
        np.testing.assert_allclose(scores[0], -d2)

    def test_cmlf_has_tag_projection(self, tiny_split):
        m = CMLF(tiny_split.train, TrainConfig(**CFG))
        assert m.tag_proj.data.shape == (tiny_split.train.n_tags, 16)

    def test_cmlf_feature_loss_contributes(self, tiny_split):
        m = CMLF(tiny_split.train, TrainConfig(**CFG), feature_weight=1.0)
        extra = m._extra_loss(np.array([0, 1, 2]))
        assert extra.item() > 0.0


class TestHyperbolicModels:
    def test_hyperml_embeddings_on_hyperboloid_after_training(self, tiny_split):
        m = HyperML(tiny_split.train, TrainConfig(lr=1.0, margin=1.0, **CFG))
        m.fit(tiny_split)
        inner = m.manifold.inner_np(m.user_emb.data, m.user_emb.data)
        np.testing.assert_allclose(inner, -1.0, atol=1e-8)

    def test_hgcf_scores_symmetric_in_distance(self, tiny_split):
        m = HGCF(tiny_split.train, TrainConfig(lr=1.0, margin=1.0, n_layers=1, **CFG))
        scores = m.score_users(np.arange(tiny_split.train.n_users))
        assert (scores <= 0).all()  # negative squared distances

    def test_hyperml_uses_rsgd(self, tiny_split):
        from repro.optim import RiemannianSGD

        m = HyperML(tiny_split.train, TrainConfig(**CFG))
        assert isinstance(m.make_optimizer(), RiemannianSGD)


class TestMFFamily:
    def test_nmf_factors_nonnegative_after_training(self, tiny_split):
        m = NMF(tiny_split.train, TrainConfig(epochs=10, **{k: v for k, v in CFG.items() if k != "epochs"}))
        m.fit(tiny_split)
        assert (m.W >= 0).all()
        assert (m.H >= 0).all()

    def test_nmf_reports_no_parameters(self, tiny_split):
        m = NMF(tiny_split.train, TrainConfig(**CFG))
        assert list(m.parameters()) == []

    def test_bprmf_bias_broadcast(self, tiny_split):
        m = BPRMF(tiny_split.train, TrainConfig(**CFG))
        m.item_bias.data[:] = 5.0
        base = m.score_users(np.array([0]))
        m.item_bias.data[:] = 0.0
        np.testing.assert_allclose(base - m.score_users(np.array([0])), 5.0)


class TestRelationModels:
    def test_transcf_relation_uses_neighborhoods(self, tiny_split):
        m = TransCF(tiny_split.train, TrainConfig(**CFG))
        user_nb, item_nb = m._neighborhoods()
        assert user_nb.data.shape == (tiny_split.train.n_users, 16)
        # A user's neighbourhood equals the mean of interacted item embeddings.
        items = tiny_split.train.items_of_user()[0]
        if len(items):
            np.testing.assert_allclose(
                user_nb.data[0], m.item_emb.data[items].mean(axis=0)
            )

    def test_lrml_attention_sums_to_one(self, tiny_split):
        from repro.autodiff import Tensor, softmax

        m = LRML(tiny_split.train, TrainConfig(**CFG))
        u = Tensor(m.user_emb.data[:4])
        v = Tensor(m.item_emb.data[:4])
        att = softmax((u * v) @ m.keys.T, axis=-1)
        np.testing.assert_allclose(att.data.sum(axis=1), 1.0)

    def test_sml_margins_stay_in_bounds_via_clamp(self, tiny_split):
        m = SML(tiny_split.train, TrainConfig(lr=0.1, **CFG))
        m.fit(tiny_split)
        # raw params may wander; clamp in loss keeps the effective margin bounded
        assert np.isfinite(m.user_margin.data).all()


class TestTagModels:
    def test_amf_uses_separate_aspect_space(self, tiny_split):
        m = AMF(tiny_split.train, TrainConfig(**CFG))
        assert m.user_aspect.data.shape[1] == 4
        assert m.user_emb.data.shape[1] == 12

    def test_agcn_attribute_head_shapes(self, tiny_split):
        m = AGCN(tiny_split.train, TrainConfig(**CFG))
        assert m.attr_head.data.shape == (16, tiny_split.train.n_tags)

    def test_agcn_attribute_loss_positive(self, tiny_split):
        m = AGCN(tiny_split.train, TrainConfig(**CFG))
        loss = m.loss_batch(
            np.array([0, 1]), np.array([0, 1]), np.array([[2], [3]])
        )
        assert loss.item() > 0


class TestLightGCN:
    def test_zero_layers_equals_raw_embeddings(self, tiny_split):
        m = LightGCN(tiny_split.train, TrainConfig(n_layers=0, **{k: v for k, v in CFG.items() if k != "epochs"}, epochs=1))
        zu, zv = m._encode()
        np.testing.assert_allclose(zu.data, m.user_emb.data)
