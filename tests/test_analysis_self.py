"""Self-test: the repo's own source tree must stay violation-free.

This is the tier-1 gate behind the lint engine — any new violation under
``src/`` fails the test suite with the full report in the assertion message.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths, render_text

REPO_ROOT = Path(__file__).parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_repo_source_tree_is_violation_free():
    violations = analyze_paths([SRC])
    assert violations == [], "\n" + render_text(violations)


def test_cli_exits_zero_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no violations" in proc.stdout


def test_cli_exits_nonzero_on_violation_fixtures():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES)],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    # The report names the rule and the file:line of each finding.
    assert "unclamped-boundary-op" in proc.stdout
    assert "missing-backward" in proc.stdout
    assert "unclamped_boundary_op_bad.py:7:" in proc.stdout


def test_cli_json_report_on_fixtures():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES), "--format", "json"],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["total"] >= 8
    assert set(payload["counts"]) == {
        "bare-except",
        "global-rng",
        "inplace-tensor-data",
        "magic-epsilon",
        "missing-backward",
        "mutable-default-arg",
        "print-call",
        "unclamped-boundary-op",
    }
