"""Self-test: the repo's own code must stay free of unbaselined findings.

This is the tier-1 gate behind the lint engine — every rule pack (file
rules AND the cross-module project rules) runs over ``src/``, ``tests/``
and ``scripts/``; any error-severity finding not grandfathered in the
committed ``lint-baseline.json`` fails the suite with the full report in
the assertion message.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import Baseline, analyze_paths, render_text, split_by_baseline

REPO_ROOT = Path(__file__).parents[1]
SRC = REPO_ROOT / "src"
WALK_ROOTS = [SRC, REPO_ROOT / "tests", REPO_ROOT / "scripts"]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
BASELINE = REPO_ROOT / "lint-baseline.json"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_repo_source_tree_is_violation_free():
    violations = analyze_paths([SRC])
    assert violations == [], "\n" + render_text(violations)


def test_repo_tests_and_scripts_have_no_unbaselined_errors():
    violations = analyze_paths(WALK_ROOTS)
    new, _ = split_by_baseline(violations, Baseline.load(BASELINE))
    errors = [v for v in new if v.severity == "error"]
    assert errors == [], "\n" + render_text(errors)


def test_cli_exits_zero_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no violations" in proc.stdout


def test_cli_full_walk_with_baseline_exits_zero():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "src",
            "tests",
            "scripts",
            "--baseline",
            "lint-baseline.json",
        ],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exits_nonzero_on_violation_fixtures():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES)],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    # The report names the rule and the file:line of each finding.
    assert "unclamped-boundary-op" in proc.stdout
    assert "missing-backward" in proc.stdout
    assert "unclamped_boundary_op_bad.py:7:" in proc.stdout


def test_cli_json_report_on_fixtures():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES), "--format", "json"],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["total"] >= 14
    assert payload["errors"] > 0 and payload["warnings"] > 0
    assert set(payload["counts"]) == {
        "bad-suppression",
        "bare-except",
        "global-rng",
        "inplace-tensor-data",
        "loop-invariant-rebuild",
        "magic-epsilon",
        "manifold-double-map",
        "missing-backward",
        "mixed-manifold-op",
        "mutable-default-arg",
        "ndarray-row-loop",
        "print-call",
        "redundant-clamp",
        "unclamped-boundary-op",
    }


def test_cli_sarif_report_on_project_fixture():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "tests/fixtures/lint_project",
            "--format",
            "sarif",
        ],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    rule_ids = {r["ruleId"] for r in payload["runs"][0]["results"]}
    assert rule_ids == {"frozen-scores-contract", "reference-twin", "untracked-parameter"}
