"""Hypothesis property tests on the synthetic generator and splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticConfig, generate, temporal_split

pytestmark = pytest.mark.slow


@st.composite
def configs(draw):
    depth = draw(st.integers(1, 3))
    branching = tuple(draw(st.integers(2, 3)) for _ in range(depth))
    return SyntheticConfig(
        n_users=draw(st.integers(15, 40)),
        n_items=draw(st.integers(30, 80)),
        branching=branching,
        mean_interactions=float(draw(st.integers(10, 20))),
        ancestor_keep_prob=draw(st.floats(0.0, 1.0)),
        noise_tag_prob=draw(st.floats(0.0, 0.5)),
        untagged_item_prob=draw(st.floats(0.0, 0.3)),
        tag_affinity=draw(st.floats(0.2, 0.8)),
        cold_item_frac=draw(st.floats(0.0, 0.3)),
        drift=draw(st.floats(0.0, 1.0)),
        seed=draw(st.integers(0, 10_000)),
    )


@settings(max_examples=12, deadline=None)
@given(configs())
def test_generator_invariants(config):
    ds = generate(config)
    # Entity ranges hold (the dataset constructor also validates these).
    assert ds.n_tags == sum(
        int(np.prod(config.branching[: i + 1])) for i in range(len(config.branching))
    )
    # No user-item duplicates.
    pairs = set(zip(ds.user_ids.tolist(), ds.item_ids.tolist()))
    assert len(pairs) == ds.n_interactions
    # Every user has at least the minimum history for the temporal protocol.
    counts = np.bincount(ds.user_ids, minlength=ds.n_users)
    assert counts.min() >= 10
    # Tag matrix is binary.
    assert set(np.unique(ds.item_tags)) <= {0.0, 1.0}
    # Planted parent array is a valid forest (no self/forward loops).
    for t, p in enumerate(ds.tag_parent):
        assert p == -1 or (0 <= p < t)


@settings(max_examples=8, deadline=None)
@given(configs())
def test_split_is_partition_and_ordered(config):
    ds = generate(config)
    split = temporal_split(ds)
    assert (
        split.train.n_interactions
        + split.valid.n_interactions
        + split.test.n_interactions
        == ds.n_interactions
    )
    # Train timestamps precede test timestamps within each user.
    last_train = {}
    for u, t in zip(split.train.user_ids, split.train.timestamps):
        last_train[int(u)] = max(last_train.get(int(u), -np.inf), t)
    for u, t in zip(split.test.user_ids, split.test.timestamps):
        assert t >= last_train[int(u)]


@settings(max_examples=8, deadline=None)
@given(configs())
def test_generator_deterministic(config):
    a, b = generate(config), generate(config)
    np.testing.assert_array_equal(a.item_ids, b.item_ids)
    np.testing.assert_array_equal(a.item_tags, b.item_tags)
