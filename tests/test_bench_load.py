"""The serve load harness: schema fit, golden fixture, measurement sanity.

``repro.bench.load`` documents must be plain ``repro.bench/v1`` — the
validator that guards the hot-path trajectory accepts a committed
``BENCH_serve.json`` untouched and rejects seeded corruptions of it.
The measurement path is tested against a live tiny server: request
accounting must be exact, latency percentiles ordered, and the built-in
parity gate must actually catch a lying deployment.
"""

from __future__ import annotations

import copy
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import validate_result
from repro.bench.load import (
    build_parser,
    check_parity,
    deploy,
    run_load_cell,
    sweep,
)
from repro.serve import RecommenderService, ServeError, create_server, export_payload

GOLDEN = Path(__file__).parent / "fixtures" / "bench" / "BENCH_serve_golden.json"


@pytest.fixture(scope="module")
def artifact_path(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(71)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("load") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return path


class TestGoldenFixture:
    def test_golden_document_validates_clean(self):
        result = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert validate_result(result) == []
        assert result["suite"] == "serve"
        names = [record["name"] for record in result["benchmarks"]]
        assert any(name.startswith("serve.load.w0.") for name in names)
        assert any(name.startswith("serve.load.w2.") for name in names)
        for record in result["benchmarks"]:
            workload = record["workload"]
            for key in ("workers", "shards", "concurrency", "requests",
                        "qps", "p50_ms", "p99_ms", "errors"):
                assert key in workload, (record["name"], key)
            assert workload["errors"] == 0
            assert workload["qps"] > 0
            assert workload["p50_ms"] <= workload["p99_ms"]
            assert len(record["fast"]["times_s"]) == workload["concurrency"]

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda d: d.pop("schema"),
            lambda d: d.__setitem__("schema", "repro.bench/v0"),
            lambda d: d.pop("benchmarks"),
            lambda d: d["benchmarks"][0].pop("name"),
            lambda d: d["benchmarks"][0].pop("fast"),
            lambda d: d["benchmarks"][0]["fast"].pop("times_s"),
            lambda d: d["benchmarks"][0]["fast"].__setitem__("times_s", []),
            lambda d: d["benchmarks"][0]["fast"]["times_s"].__setitem__(0, -1.0),
            lambda d: d["benchmarks"][0].__setitem__(
                "reference", d["benchmarks"][0]["fast"]
            ),  # reference without a speedup
        ],
        ids=[
            "no-schema", "wrong-schema", "no-benchmarks", "no-name", "no-fast",
            "no-times", "empty-times", "negative-time", "reference-sans-speedup",
        ],
    )
    def test_seeded_corruptions_are_rejected(self, corrupt):
        document = copy.deepcopy(json.loads(GOLDEN.read_text(encoding="utf-8")))
        corrupt(document)
        assert validate_result(document) != []


class TestLoadCell:
    @pytest.fixture(scope="class")
    def live(self, artifact_path):
        service = RecommenderService(artifact_path, cache_size=0)
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.server_address[:2], service
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_accounting_is_exact(self, live):
        address, service = live
        cell = run_load_cell(address, concurrency=4, requests=40,
                             n_users=service.n_users, k=5)
        assert cell["requests"] == 40
        assert cell["errors"] == 0
        assert cell["concurrency"] == 4
        assert len(cell["client_wall_s"]) == 4
        assert cell["qps"] > 0
        assert 0 < cell["p50_ms"] <= cell["p99_ms"]
        assert cell["wall_s"] >= max(cell["client_wall_s"]) - 0.5

    def test_invalid_shapes_rejected(self, live):
        address, service = live
        with pytest.raises(ValueError):
            run_load_cell(address, concurrency=0, requests=10, n_users=service.n_users)
        with pytest.raises(ValueError):
            run_load_cell(address, concurrency=8, requests=4, n_users=service.n_users)

    def test_parity_gate_passes_honest_deployment(self, live):
        address, service = live
        check_parity(address, RecommenderService(service.artifact), users=[0, 1, 2], k=5)

    def test_parity_gate_catches_mismatched_reference(self, live, tiny_split, tmp_path):
        address, _ = live
        rng = np.random.default_rng(72)  # different scores than the served artifact
        train = tiny_split.train
        other = tmp_path / "other.npz"
        export_payload(
            other,
            score_fn="dense",
            arrays={"scores": rng.random((train.n_users, train.n_items))},
            train=train,
            model_name="Dense",
        )
        with pytest.raises(ServeError, match="parity violation"):
            check_parity(address, RecommenderService(other), users=[0, 1, 2], k=5)


class TestSweep:
    def test_quick_sweep_emits_valid_document(self, artifact_path):
        result = sweep(
            artifact_path,
            workers_list=[0, 1],
            concurrency_list=[1, 2],
            requests=8,
            cache_size=16,
            quick=True,
        )
        assert validate_result(result) == []
        assert [r["name"] for r in result["benchmarks"]] == [
            "serve.load.w0.c1", "serve.load.w0.c2",
            "serve.load.w1.c1", "serve.load.w1.c2",
        ]
        assert result["environment"]["cpu_count"] >= 1
        assert result["config"]["cache_size"] == 16
        for record in result["benchmarks"]:
            assert record["workload"]["errors"] == 0

    def test_deploy_pool_serves_health(self, artifact_path, tmp_path):
        from repro.serve import export_shared
        import http.client

        bundle = export_shared(artifact_path, tmp_path / "bundle")
        with deploy(bundle, workers=1, shards=2) as (host, port):
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request("GET", "/health")
                response = conn.getresponse()
                body = json.loads(response.read().decode("utf-8"))
            finally:
                conn.close()
            assert response.status == 200
            assert body["n_workers"] == 1 and body["n_shards"] == 2


class TestParser:
    def test_int_lists_and_defaults(self):
        args = build_parser().parse_args(
            ["model.npz", "--workers", "0,2", "--concurrency", "1,4,8"]
        )
        assert args.workers == [0, 2]
        assert args.concurrency == [1, 4, 8]
        assert args.cache == 0

    def test_synthetic_spec(self):
        args = build_parser().parse_args(["--synthetic", "120,200,16"])
        assert args.artifact is None
        assert args.synthetic == [120, 200, 16]

    def test_bad_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model.npz", "--workers", "two"])
