"""CLI behaviour (fast paths only; training uses a tiny scale)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "TaxoRec"
        assert args.dataset == "ciao"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "netflix"])


class TestMain:
    def test_list_models(self, capsys):
        assert main(["--list-models"]) == 0
        out = capsys.readouterr().out
        assert "TaxoRec" in out
        assert "BPRMF" in out

    def test_unknown_model_error(self, capsys):
        assert main(["--model", "Nothing"]) == 2

    def test_end_to_end_tiny_run(self, capsys, tmp_path):
        save = tmp_path / "weights.npz"
        code = main(
            [
                "--model",
                "BPRMF",
                "--dataset",
                "ciao",
                "--scale",
                "0.08",
                "--epochs",
                "2",
                "--save",
                str(save),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recall@10" in out
        assert save.exists()
        loaded = np.load(save)
        assert "user_emb" in loaded
