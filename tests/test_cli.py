"""CLI behaviour (fast paths only; training uses a tiny scale)."""

import json
import logging

import numpy as np
import pytest

from repro.cli import build_parser, main

TINY = ["--dataset", "ciao", "--scale", "0.08", "--epochs", "2"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "TaxoRec"
        assert args.dataset == "ciao"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "netflix"])


class TestMain:
    def test_list_models(self, capsys):
        assert main(["--list-models"]) == 0
        out = capsys.readouterr().out
        assert "TaxoRec" in out
        assert "BPRMF" in out

    def test_unknown_model_error(self, capsys):
        assert main(["--model", "Nothing"]) == 2

    def test_end_to_end_tiny_run(self, capsys, tmp_path):
        save = tmp_path / "weights.npz"
        code = main(
            [
                "--model",
                "BPRMF",
                "--dataset",
                "ciao",
                "--scale",
                "0.08",
                "--epochs",
                "2",
                "--save",
                str(save),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recall@10" in out
        assert save.exists()
        loaded = np.load(save)
        assert "user_emb" in loaded


class TestRunArtifactFlags:
    def test_checkpoint_every_requires_out_dir(self, capsys):
        assert main(["--model", "CML", "--checkpoint-every", "2", *TINY]) == 2
        assert "--out-dir" in capsys.readouterr().err

    def test_out_dir_and_resume_round_trip(self, capsys, tmp_path):
        out = tmp_path / "run"
        code = main(
            ["--model", "CML", "--out-dir", str(out), "--checkpoint-every", "1", *TINY]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "Recall@10" in first
        assert (out / "config.json").exists()
        assert (out / "checkpoint_0000.npz").exists()
        doc = json.loads((out / "result.json").read_text())
        assert doc["schema"] == "repro.run/v1"

        resumed = tmp_path / "resumed"
        code = main(
            ["--resume", str(out / "checkpoint_0000.npz"), "--out-dir", str(resumed)]
        )
        assert code == 0
        second = capsys.readouterr().out
        assert "Recall@10" in second
        # Resuming from epoch 1 of 2 must land on the same test metrics.
        def metrics_block(text):
            return text.split("Test metrics")[1].split("run artifacts")[0]

        assert metrics_block(first) == metrics_block(second)
        assert (resumed / "history.jsonl").read_text() == (out / "history.jsonl").read_text()

    def test_verbose_routes_epoch_logs(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.train"):
            assert main(["--model", "BPRMF", "--verbose", *TINY]) == 0
        assert "BPRMF epoch 0 loss" in caplog.text
        assert "BPRMF epoch 1 loss" in caplog.text

    def test_quiet_by_default(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.train"):
            assert main(["--model", "BPRMF", *TINY]) == 0
        assert "epoch 0" not in caplog.text


class TestExperimentSubcommand:
    def test_tiny_sweep(self, capsys, tmp_path):
        out = tmp_path / "sweep"
        code = main(
            [
                "experiment",
                "--models", "BPRMF,CML",
                "--datasets", "ciao",
                "--seeds", "0,1",
                "--scale", "0.08",
                "--epochs", "1",
                "--out-dir", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Aggregated over seeds" in text
        assert (out / "experiment.json").exists()
        assert (out / "comparison.txt").exists()
        cells = sorted(p.name for p in out.iterdir() if p.is_dir())
        assert cells == [
            "BPRMF__ciao__seed0",
            "BPRMF__ciao__seed1",
            "CML__ciao__seed0",
            "CML__ciao__seed1",
        ]

    def test_bad_seeds_rejected(self, capsys):
        assert main(["experiment", "--seeds", "zero"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_unknown_model_rejected(self, capsys):
        assert main(["experiment", "--models", "Nothing", "--epochs", "1"]) == 2
        assert "unknown models" in capsys.readouterr().err
