"""SVG rendering of Poincaré-disc embeddings."""

import numpy as np
import pytest

from repro.taxonomy import poincare_disc_svg, save_svg


class TestPoincareDiscSvg:
    def test_valid_svg_document(self):
        pts = np.array([[0.1, 0.2], [-0.3, 0.4]])
        svg = poincare_disc_svg(pts)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") == 3  # disc + 2 points

    def test_edges_drawn(self):
        pts = np.array([[0.1, 0.2], [-0.3, 0.4]])
        svg = poincare_disc_svg(pts, edges=[(0, 1)])
        assert "<line" in svg

    def test_labels_color_points(self):
        pts = np.array([[0.1, 0.0], [0.2, 0.0]])
        svg = poincare_disc_svg(pts, labels=np.array([0, 1]))
        assert "#4e79a7" in svg and "#f28e2b" in svg

    def test_names_become_titles(self):
        svg = poincare_disc_svg(np.array([[0.0, 0.0]]), names=["sushi"])
        assert "<title>sushi</title>" in svg

    def test_rejects_points_outside_disc(self):
        with pytest.raises(ValueError):
            poincare_disc_svg(np.array([[1.5, 0.0]]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            poincare_disc_svg(np.zeros((3, 3)))

    def test_save(self, tmp_path):
        path = tmp_path / "disc.svg"
        save_svg(poincare_disc_svg(np.array([[0.0, 0.0]])), path)
        assert path.read_text().startswith("<svg")

    def test_coordinates_inside_canvas(self):
        pts = np.array([[0.9, 0.0], [-0.9, 0.0], [0.0, 0.9]])
        svg = poincare_disc_svg(pts, size=200)
        import re

        for cx in re.findall(r'cx="([\d.]+)"', svg):
            assert 0 <= float(cx) <= 200
