"""Experiment protocol runner."""

import numpy as np
import pytest

from repro.eval import EvalResult, ExperimentResult, run_experiment, run_model
from repro.models import TrainConfig


class TestExperimentResult:
    def make(self, values):
        result = ExperimentResult(model="M", dataset="D")
        for v in values:
            result.per_seed.append(
                EvalResult(recall_at_10=v, recall_at_20=v, ndcg_at_10=v, ndcg_at_20=v)
            )
        return result

    def test_mean_std(self):
        r = self.make([0.1, 0.3])
        assert r.mean("recall_at_10") == pytest.approx(0.2)
        assert r.std("recall_at_10") == pytest.approx(0.1)

    def test_cell_single_seed_no_pm(self):
        assert "±" not in self.make([0.1]).cell("recall_at_10")

    def test_cell_multi_seed_has_pm(self):
        assert "±" in self.make([0.1, 0.2]).cell("recall_at_10")

    def test_as_row_length(self):
        assert len(self.make([0.1]).as_row()) == 5

    def test_values_vector(self):
        np.testing.assert_allclose(self.make([0.1, 0.4]).values("ndcg_at_20"), [0.1, 0.4])


class TestRunners:
    def test_run_model(self, tiny_split):
        config = TrainConfig(dim=8, epochs=2, batch_size=256, seed=0)
        result = run_model("BPRMF", tiny_split, config)
        assert isinstance(result, EvalResult)
        assert 0.0 <= result.recall_at_10 <= 1.0

    def test_run_experiment_end_to_end(self):
        result = run_experiment(
            "BPRMF", "ciao", seeds=(0,), scale=0.1, epochs=2, batch_size=256, dim=8
        )
        assert result.model == "BPRMF"
        assert len(result.per_seed) == 1
        assert result.overall_mean() >= 0.0
