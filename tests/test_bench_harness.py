"""Tests for the ``repro.bench`` harness: timing protocol, result schema, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA,
    BenchCase,
    hotpath_cases,
    run_cases,
    time_callable,
    validate_result,
    write_result,
)
from repro.bench.cli import build_parser, main


def _counting_case(calls: dict) -> BenchCase:
    def setup(quick):
        calls["setup"] = calls.get("setup", 0) + 1
        return {"quick": quick}

    def fast(state):
        calls["fast"] = calls.get("fast", 0) + 1
        return 1

    def reference(state):
        calls["reference"] = calls.get("reference", 0) + 1
        return 1

    return BenchCase(
        name="dummy.case",
        group="dummy",
        setup=setup,
        fast=fast,
        reference=reference,
        workload=lambda quick: {"n": 1 if quick else 100},
    )


class TestTimeCallable:
    def test_schema_and_counts(self):
        calls = []
        out = time_callable(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert set(out) == {"times_s", "best_s", "mean_s", "std_s"}
        assert len(out["times_s"]) == 3
        assert out["best_s"] == min(out["times_s"])
        assert all(t >= 0 for t in out["times_s"])

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestRunCases:
    def test_document_is_valid_and_complete(self):
        calls: dict = {}
        doc = run_cases([_counting_case(calls)], suite="unit", quick=True, warmup=1, repeats=2)
        assert validate_result(doc) == []
        assert doc["schema"] == SCHEMA
        assert doc["suite"] == "unit" and doc["quick"] is True
        (record,) = doc["benchmarks"]
        assert record["name"] == "dummy.case"
        assert record["workload"] == {"n": 1}
        assert record["speedup"] is not None and record["speedup"] > 0
        assert calls["setup"] == 1  # state shared by both paths
        assert calls["fast"] == calls["reference"] == 3  # 1 warmup + 2 timed each

    def test_only_filter(self):
        calls: dict = {}
        doc = run_cases([_counting_case(calls)], suite="unit", only="nomatch")
        assert doc["benchmarks"] == [] and "setup" not in calls

    def test_fast_only_case_has_no_speedup(self):
        case = BenchCase(name="solo", group="g", setup=lambda q: None, fast=lambda s: None)
        doc = run_cases([case], suite="unit", repeats=1)
        (record,) = doc["benchmarks"]
        assert record["reference"] is None and record["speedup"] is None
        assert validate_result(doc) == []


class TestValidateAndWrite:
    def test_rejects_wrong_schema_and_missing_keys(self):
        problems = validate_result({"schema": "nope"})
        assert any("schema" in p for p in problems)
        assert any("benchmarks" in p for p in problems)

    def test_rejects_bad_timing(self):
        doc = run_cases([], suite="unit")
        doc["benchmarks"] = [
            {"name": "x", "group": "g", "fast": {"times_s": []}, "reference": None, "speedup": None}
        ]
        assert any("times_s" in p for p in validate_result(doc))

    def test_write_result_roundtrip(self, tmp_path):
        doc = run_cases([], suite="unit")
        path = tmp_path / "BENCH_unit.json"
        write_result(doc, path)
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_write_result_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="invalid bench result"):
            write_result({"schema": "nope"}, tmp_path / "bad.json")


class TestHotpathRegistryAndCLI:
    def test_registry_names_cover_the_four_hot_paths(self):
        names = {c.name for c in hotpath_cases()}
        for expected in (
            "evaluator.topk",
            "sampling.negatives",
            "taxorec.einstein_midpoint",
            "taxorec.gcn_propagation",
            "clustering.poincare_kmeans",
        ):
            assert expected in names
        assert all(c.reference is not None for c in hotpath_cases())

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert not args.quick and args.only is None and args.out is None

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "evaluator.topk" in out and "paired" in out

    def test_cli_quick_writes_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_smoke.json"
        code = main(["--quick", "--only", "topk", "--repeats", "1", "--out", str(out_path)])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert validate_result(doc) == []
        assert doc["suite"] == "smoke" and doc["quick"] is True
        assert [r["name"] for r in doc["benchmarks"]] == ["evaluator.topk"]
        assert "evaluator.topk" in capsys.readouterr().out

    def test_cli_unmatched_filter_returns_error(self, tmp_path):
        assert main(["--quick", "--only", "zzz", "--out", str(tmp_path / "x.json")]) == 2
