"""Backend registry and selection tests: env resolution, typed negative
paths, singleton caching, scoped switching, and CLI wiring."""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    ENV_VAR,
    FusedBackend,
    NumpyBackend,
    UnknownBackendError,
    activate_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_active(monkeypatch):
    """Every test runs against a pristine selection state and leaves none."""
    previous = backend_mod._active
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    backend_mod._active = previous


class TestRegistry:
    def test_registered_ids(self):
        assert available_backends() == ("numpy", "fused")

    def test_default_is_numpy(self):
        backend_mod._active = None
        assert get_backend().name == "numpy"

    def test_env_var_resolved_on_first_use(self, monkeypatch):
        backend_mod._active = None
        monkeypatch.setenv(ENV_VAR, "fused")
        assert get_backend().name == "fused"

    def test_set_backend_overrides_env(self, monkeypatch):
        backend_mod._active = None
        monkeypatch.setenv(ENV_VAR, "fused")
        assert set_backend("numpy").name == "numpy"
        assert get_backend().name == "numpy"

    def test_instances_are_cached_singletons(self):
        assert set_backend("fused") is set_backend("fused")
        assert get_backend() is set_backend("fused")

    def test_tolerance_contract(self):
        assert NumpyBackend().tolerance == 0.0
        assert FusedBackend().tolerance == 1e-10  # repro-lint: disable=magic-epsilon


class TestNegativePaths:
    def test_unknown_env_backend_raises_typed_error(self, monkeypatch):
        backend_mod._active = None
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend()
        err = excinfo.value
        assert err.name == "turbo"
        assert err.known == ("numpy", "fused")
        # The message must be actionable: name the bad id, the sources the
        # id can come from, and every valid id.
        message = str(err)
        assert "'turbo'" in message and ENV_VAR in message and "--backend" in message
        assert "numpy" in message and "fused" in message

    def test_unknown_backend_is_a_value_error(self):
        with pytest.raises(ValueError):
            set_backend("nope")

    def test_use_backend_rejects_unknown_before_entering(self):
        set_backend("numpy")
        with pytest.raises(UnknownBackendError):
            with use_backend("nope"):
                pass  # pragma: no cover - never entered
        assert get_backend().name == "numpy"

    def test_bench_cli_rejects_unknown_backend(self, capsys):
        from repro.bench.cli import main

        assert main(["--backend", "bogus", "--list"]) == 2
        assert "unknown backend 'bogus'" in capsys.readouterr().err


class TestScopedSwitching:
    def test_use_backend_yields_and_restores(self):
        set_backend("numpy")
        with use_backend("fused") as xp:
            assert xp.name == "fused"
            assert get_backend() is xp
        assert get_backend().name == "numpy"

    def test_use_backend_restores_on_error(self):
        set_backend("numpy")
        with pytest.raises(RuntimeError):
            with use_backend("fused"):
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"

    def test_nested_scopes_unwind_in_order(self):
        set_backend("fused")
        with use_backend("numpy"):
            with use_backend("fused"):
                assert get_backend().name == "fused"
            assert get_backend().name == "numpy"
        assert get_backend().name == "fused"


class TestActivateBackend:
    def test_exports_env_for_children(self, monkeypatch):
        backend = activate_backend("fused")
        assert backend.name == "fused"
        import os

        assert os.environ[ENV_VAR] == "fused"

    def test_unknown_name_does_not_touch_env(self, monkeypatch):
        import os

        with pytest.raises(UnknownBackendError):
            activate_backend("bogus")
        assert ENV_VAR not in os.environ


class TestFusedThreads:
    def test_default_is_single_threaded(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND_THREADS", raising=False)
        assert FusedBackend().threads == 1

    def test_env_knob_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "2")
        assert FusedBackend().threads == 2

    def test_threaded_kernels_match_single_threaded(self, monkeypatch):
        rng = np.random.default_rng(11)
        u = rng.normal(size=(37, 9))
        v = rng.normal(size=(53, 9))
        monkeypatch.delenv("REPRO_BACKEND_THREADS", raising=False)
        single = FusedBackend().sq_dist_euclid_gram(u, v)
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "3")
        threaded = FusedBackend().sq_dist_euclid_gram(u, v)
        # Disjoint row blocks: threading must not change a single bit.
        np.testing.assert_array_equal(single, threaded)
