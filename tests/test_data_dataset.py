"""InteractionDataset container semantics."""

import numpy as np
import pytest

from repro.data import InteractionDataset


def make(n_users=3, n_items=4, n_tags=2, **kw):
    defaults = dict(
        n_users=n_users,
        n_items=n_items,
        n_tags=n_tags,
        user_ids=np.array([0, 0, 1, 2]),
        item_ids=np.array([1, 2, 0, 3]),
        timestamps=np.array([0.0, 1.0, 0.0, 0.0]),
        item_tags=np.array([[1, 0], [0, 1], [1, 1], [0, 0]], dtype=float),
    )
    defaults.update(kw)
    return InteractionDataset(**defaults)


class TestValidation:
    def test_valid_construction(self):
        ds = make()
        assert ds.n_interactions == 4

    def test_rejects_ragged_arrays(self):
        with pytest.raises(ValueError):
            make(user_ids=np.array([0, 1]))

    def test_rejects_bad_item_tags_shape(self):
        with pytest.raises(ValueError):
            make(item_tags=np.zeros((2, 2)))

    def test_rejects_out_of_range_user(self):
        with pytest.raises(ValueError):
            make(user_ids=np.array([0, 0, 1, 5]))

    def test_rejects_out_of_range_item(self):
        with pytest.raises(ValueError):
            make(item_ids=np.array([1, 2, 0, 9]))

    def test_default_tag_names(self):
        assert make().tag_names == ["tag_0", "tag_1"]


class TestViews:
    def test_density(self):
        assert make().density == 4 / 12

    def test_interaction_matrix_binary(self):
        ds = make(user_ids=np.array([0, 0, 1, 2]), item_ids=np.array([1, 1, 0, 3]))
        mat = ds.interaction_matrix()
        assert mat.shape == (3, 4)
        assert mat[0, 1] == 1.0  # duplicate collapsed

    def test_items_of_user_ordered_by_time(self):
        ds = make(
            user_ids=np.array([0, 0, 1, 2]),
            item_ids=np.array([2, 1, 0, 3]),
            timestamps=np.array([5.0, 1.0, 0.0, 0.0]),
        )
        per_user = ds.items_of_user()
        np.testing.assert_array_equal(per_user[0], [1, 2])  # time-sorted

    def test_items_of_user_empty_for_inactive(self):
        ds = make(user_ids=np.array([0, 0, 0, 0]))
        assert len(ds.items_of_user()[2]) == 0

    def test_tags_of_item(self):
        ds = make()
        np.testing.assert_array_equal(ds.tags_of_item(2), [0, 1])
        np.testing.assert_array_equal(ds.tags_of_item(3), [])

    def test_subset(self):
        ds = make()
        sub = ds.subset(ds.user_ids == 0, name="sub")
        assert sub.n_interactions == 2
        assert sub.name == "sub"
        assert sub.n_users == ds.n_users  # entity space preserved

    def test_repr(self):
        assert "users=3" in repr(make())
