"""The long tail of Tensor ops: min/var/std, log1p/expm1, squeeze/unsqueeze."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients


class TestMinVarStd:
    def test_min_values(self):
        t = Tensor(np.array([[3.0, 1.0], [2.0, 5.0]]))
        np.testing.assert_array_equal(t.min(axis=1).data, [1.0, 2.0])
        assert t.min().item() == 1.0

    def test_min_gradient(self, rng):
        x = rng.permutation(8).astype(np.float64).reshape(2, 4)
        check_gradients(lambda a: a.min(axis=1).sum(), [x])

    def test_var_matches_numpy(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(x).var().item(), x.var())
        np.testing.assert_allclose(Tensor(x).var(axis=0).data, x.var(axis=0))

    def test_var_gradient(self, rng):
        check_gradients(lambda a: a.var(axis=1).sum(), [rng.normal(size=(3, 4))])

    def test_std_matches_numpy(self, rng):
        x = rng.normal(size=(10,))
        np.testing.assert_allclose(Tensor(x).std().item(), x.std(), rtol=1e-6)

    def test_std_of_constant_finite_gradient(self):
        x = Tensor(np.ones(4), requires_grad=True)
        x.std().backward()
        assert np.isfinite(x.grad).all()


class TestLog1pExpm1:
    def test_log1p_accuracy_small(self):
        x = Tensor(np.array([1e-12]))
        np.testing.assert_allclose(x.log1p().data, [1e-12], rtol=1e-6)

    def test_expm1_accuracy_small(self):
        x = Tensor(np.array([1e-12]))
        np.testing.assert_allclose(x.expm1().data, [1e-12], rtol=1e-6)

    def test_roundtrip(self, rng):
        x = rng.uniform(-0.5, 2.0, size=6)
        np.testing.assert_allclose(Tensor(x).expm1().log1p().data, x, rtol=1e-10)

    def test_gradients(self, rng):
        x = rng.uniform(-0.5, 2.0, size=(3, 2))
        check_gradients(lambda a: a.log1p().sum(), [x])
        check_gradients(lambda a: a.expm1().sum(), [x])


class TestSqueezeUnsqueeze:
    def test_squeeze(self):
        t = Tensor(np.zeros((3, 1, 2)))
        assert t.squeeze(1).shape == (3, 2)

    def test_squeeze_rejects_wide_axis(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((3, 2))).squeeze(1)

    def test_unsqueeze(self):
        t = Tensor(np.zeros((3, 2)))
        assert t.unsqueeze(0).shape == (1, 3, 2)
        assert t.unsqueeze(-1).shape == (3, 2, 1)

    def test_roundtrip_gradient(self, rng):
        x = rng.normal(size=(3, 2))
        check_gradients(lambda a: (a.unsqueeze(1).squeeze(1) ** 2).sum(), [x])
