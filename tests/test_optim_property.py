"""Hypothesis property tests on the optimisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Parameter, Tensor
from repro.manifolds import Lorentz, PoincareBall
from repro.optim import SGD, Adam, RiemannianSGD

pytestmark = pytest.mark.slow

coords2 = st.tuples(st.floats(-0.5, 0.5), st.floats(-0.5, 0.5))


@settings(max_examples=25, deadline=None)
@given(coords2, st.floats(0.01, 0.3))
def test_sgd_step_reduces_convex_loss(start, lr):
    p = Parameter(np.array(start))
    opt = SGD([p], lr=lr)
    opt.zero_grad()
    loss_before = float(((p - Tensor(np.zeros(2))) ** 2).sum().item())
    ((p - Tensor(np.zeros(2))) ** 2).sum().backward()
    opt.step()
    loss_after = float(np.sum(p.data**2))
    assert loss_after <= loss_before + 1e-12


@settings(max_examples=25, deadline=None)
@given(coords2, st.floats(0.05, 1.0))
def test_poincare_rsgd_stays_in_ball(start, lr):
    ball = PoincareBall()
    p = Parameter(ball.proj(np.array([list(start)])), manifold=ball)
    target = Tensor(ball.proj(np.array([[0.4, -0.2]])))
    opt = RiemannianSGD([p], lr=lr)
    for _ in range(10):
        opt.zero_grad()
        (ball.dist(p, target) ** 2).sum().backward()
        opt.step()
        assert np.linalg.norm(p.data) < 1.0
        assert np.isfinite(p.data).all()


@settings(max_examples=25, deadline=None)
@given(coords2, st.floats(0.05, 1.0))
def test_lorentz_rsgd_stays_on_manifold(start, lr):
    lor = Lorentz()
    p = Parameter(lor.proj(np.array([[0.0, start[0], start[1]]])), manifold=lor)
    target = Tensor(lor.proj(np.array([[0.0, -0.3, 0.2]])))
    opt = RiemannianSGD([p], lr=lr)
    for _ in range(10):
        opt.zero_grad()
        lor.sq_dist(p, target).sum().backward()
        opt.step()
        inner = lor.inner_np(p.data, p.data)[0]
        assert abs(inner + 1.0) < 1e-6 * max(float(p.data[0, 0] ** 2), 1.0)


@settings(max_examples=20, deadline=None)
@given(st.floats(0.001, 0.2))
def test_adam_invariant_to_gradient_scale(lr):
    """Adam's per-coordinate normalisation makes the first step ≈ lr
    regardless of gradient magnitude."""
    steps = []
    for scale in (1.0, 1e4):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=lr)
        opt.zero_grad()
        (p * scale).sum().backward()
        opt.step()
        steps.append(p.data.copy())
    np.testing.assert_allclose(steps[0], steps[1], rtol=1e-3)
