"""Wilcoxon signed-rank helper."""

import numpy as np
import pytest

from repro.eval import wilcoxon_improvement


class TestWilcoxon:
    def test_clear_improvement_significant(self):
        base = np.array([0.1, 0.11, 0.12, 0.10, 0.09, 0.11, 0.10, 0.12])
        cand = base + 0.05
        p, sig = wilcoxon_improvement(cand, base)
        assert sig
        assert p < 0.05

    def test_no_difference_not_significant(self):
        base = np.array([0.1, 0.2, 0.3])
        p, sig = wilcoxon_improvement(base.copy(), base)
        assert not sig
        assert p == 1.0

    def test_degradation_not_significant(self):
        base = np.array([0.2, 0.21, 0.22, 0.2, 0.19, 0.2, 0.21, 0.2])
        cand = base - 0.05
        _, sig = wilcoxon_improvement(cand, base)
        assert not sig

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_improvement(np.ones(3), np.ones(4))
