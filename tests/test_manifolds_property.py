"""Hypothesis property tests on the geometry substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.manifolds import (
    Euclidean,
    Lorentz,
    PoincareBall,
    klein_to_poincare_np,
    lorentz_to_poincare_np,
    poincare_to_klein_np,
    poincare_to_lorentz_np,
)

pytestmark = pytest.mark.slow

ball = PoincareBall()
lor = Lorentz()
euc = Euclidean()

# Points sampled comfortably inside the ball so float64 stays accurate.
coords = hnp.arrays(
    np.float64,
    shape=st.integers(2, 5).map(lambda d: (d,)),
    elements=st.floats(-0.35, 0.35, allow_nan=False),
)


@st.composite
def ball_pair(draw):
    d = draw(st.integers(2, 5))
    elt = st.floats(-0.35, 0.35, allow_nan=False)
    x = draw(hnp.arrays(np.float64, (d,), elements=elt))
    y = draw(hnp.arrays(np.float64, (d,), elements=elt))
    return ball.proj(x), ball.proj(y)


@st.composite
def ball_triple(draw):
    d = draw(st.integers(2, 4))
    elt = st.floats(-0.35, 0.35, allow_nan=False)
    pts = [
        ball.proj(draw(hnp.arrays(np.float64, (d,), elements=elt))) for _ in range(3)
    ]
    return pts


@settings(max_examples=60, deadline=None)
@given(ball_pair())
def test_poincare_distance_nonnegative_symmetric(xy):
    x, y = xy
    d_xy = ball.dist_np(x, y)
    d_yx = ball.dist_np(y, x)
    assert d_xy >= 0
    np.testing.assert_allclose(d_xy, d_yx, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(ball_triple())
def test_poincare_triangle_inequality(pts):
    x, y, z = pts
    assert ball.dist_np(x, z) <= ball.dist_np(x, y) + ball.dist_np(y, z) + 1e-9


@settings(max_examples=60, deadline=None)
@given(ball_pair())
def test_isometry_across_models(xy):
    """Poincaré, Lorentz (and Klein via Poincaré) agree on distances."""
    x, y = xy
    d_p = ball.dist_np(x, y)
    d_l = lor.dist_np(poincare_to_lorentz_np(x), poincare_to_lorentz_np(y))
    np.testing.assert_allclose(d_p, d_l, atol=1e-7)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_klein_roundtrip(x):
    p = ball.proj(x)
    np.testing.assert_allclose(klein_to_poincare_np(poincare_to_klein_np(p)), p, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_lorentz_roundtrip(x):
    p = ball.proj(x)
    np.testing.assert_allclose(
        lorentz_to_poincare_np(poincare_to_lorentz_np(p)), p, atol=1e-10
    )


@settings(max_examples=60, deadline=None)
@given(coords)
def test_lorentz_expmap0_logmap0_roundtrip(v):
    x = lor.expmap0_np(v)
    np.testing.assert_allclose(lor.logmap0_np(x), v, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(coords, coords)
def test_mobius_addition_keeps_ball(x, y):
    if x.shape != y.shape:
        return
    out = ball.mobius_add_np(ball.proj(x), ball.proj(y))
    assert np.linalg.norm(out) < 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(ball_pair())
def test_euclidean_distance_is_l2(xy):
    x, y = xy
    np.testing.assert_allclose(euc.dist_np(x, y), np.linalg.norm(x - y), atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(coords)
def test_projection_idempotent(x):
    p = ball.proj(x * 5.0)  # possibly outside
    np.testing.assert_allclose(ball.proj(p), p, atol=1e-12)
