"""Hypothesis property tests for the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, check_gradients

pytestmark = pytest.mark.slow

finite = st.floats(-3.0, 3.0, allow_nan=False)


@st.composite
def matrix(draw, max_side=4):
    rows = draw(st.integers(1, max_side))
    cols = draw(st.integers(1, max_side))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=finite))


@settings(max_examples=40, deadline=None)
@given(matrix())
def test_sum_of_parts_equals_total(x):
    t = Tensor(x)
    np.testing.assert_allclose(
        t.sum(axis=0).sum().item(), t.sum().item(), rtol=1e-12, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(matrix(), finite)
def test_linearity_of_gradient(x, scale):
    """grad of (c * f) equals c * grad of f."""
    t1 = Tensor(x, requires_grad=True)
    (t1 * t1).sum().backward()
    g1 = t1.grad.copy()

    t2 = Tensor(x, requires_grad=True)
    ((t2 * t2).sum() * scale).backward()
    np.testing.assert_allclose(t2.grad, scale * g1, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrix())
def test_polynomial_gradcheck(x):
    check_gradients(
        lambda a: ((a * a * 0.5 + a * 3.0 - 1.0) ** 2).sum(), [x], atol=1e-3, rtol=1e-3
    )


@settings(max_examples=30, deadline=None)
@given(matrix())
def test_tanh_exp_chain_gradcheck(x):
    check_gradients(lambda a: (a.tanh() * (a * 0.1).exp()).sum(), [x], atol=1e-4, rtol=1e-3)


@settings(max_examples=40, deadline=None)
@given(matrix())
def test_exp_log_inverse(x):
    t = Tensor(np.abs(x) + 0.5)
    np.testing.assert_allclose(t.log().exp().data, t.data, rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(matrix(), matrix())
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    np.testing.assert_array_equal((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)


@settings(max_examples=30, deadline=None)
@given(matrix())
def test_backward_matches_manual_for_quadratic(x):
    """d/dx sum(x²) = 2x exactly."""
    t = Tensor(x, requires_grad=True)
    (t * t).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * x, rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6))
def test_take_rows_gradient_counts_repeats(n_rows, n_picks):
    rng = np.random.default_rng(0)
    idx = rng.integers(0, n_rows, size=n_picks)
    t = Tensor(rng.normal(size=(n_rows, 2)), requires_grad=True)
    t.take_rows(idx).sum().backward()
    counts = np.bincount(idx, minlength=n_rows).astype(float)
    np.testing.assert_allclose(t.grad, np.repeat(counts[:, None], 2, axis=1))
