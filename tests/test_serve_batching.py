"""Micro-batching: coalesced responses must be bit-identical to solo ones.

The batcher's contract is absolute — coalescing concurrent requests into
one scoring pass may change *throughput*, never *bytes*.  These tests
hammer a :class:`MicroBatcher` with racing threads (mixed users, mixed
``k``, mixed ``exclude_seen``) and compare every response against a
fresh single-request service, exactly.  They also pin the failure-path
contracts: validation errors fire synchronously in the caller's thread
(a malformed request can never poison a batch), and ``close()`` flushes
queued work before refusing new requests.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import (
    BadRequestError,
    MicroBatcher,
    RecommenderService,
    ServeError,
    export_payload,
)


@pytest.fixture(scope="module")
def artifact_path(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(11)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("batching") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return path


@pytest.fixture()
def reference(artifact_path):
    return RecommenderService(artifact_path, cache_size=0)


def _hammer(batcher, requests, n_threads):
    """Fire ``requests`` through ``batcher`` from ``n_threads`` racing threads."""
    results = {}
    errors = []
    barrier = threading.Barrier(n_threads)
    chunks = [requests[i::n_threads] for i in range(n_threads)]

    def worker(chunk):
        barrier.wait()
        for request_id, user, k, exclude_seen in chunk:
            try:
                results[request_id] = batcher.recommend(user, k, exclude_seen)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append((request_id, exc))

    threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestHammerBitIdentity:
    def test_uniform_k_storm_matches_unbatched_exactly(self, artifact_path, reference):
        service = RecommenderService(artifact_path, cache_size=0)
        batcher = MicroBatcher(service, max_batch=16)
        n_users = reference.n_users
        requests = [(i, i % n_users, 10, True) for i in range(200)]
        try:
            results, errors = _hammer(batcher, requests, n_threads=8)
        finally:
            batcher.close()
        assert errors == []
        assert len(results) == len(requests)
        for request_id, user, k, exclude_seen in requests:
            items, scores = results[request_id]
            ref_items, ref_scores = reference.recommend(user, k, exclude_seen=exclude_seen)
            np.testing.assert_array_equal(items, ref_items, err_msg=f"user {user}")
            np.testing.assert_array_equal(scores, ref_scores, err_msg=f"user {user}")

    def test_mixed_k_and_exclude_seen_storm(self, artifact_path, reference):
        """Heterogeneous batches split into per-(k, exclude_seen) passes."""
        service = RecommenderService(artifact_path, cache_size=0)
        batcher = MicroBatcher(service, max_batch=32, max_wait_s=0.002)
        n_users = reference.n_users
        ks = (1, 7, 25)
        requests = [
            (i, (i * 13) % n_users, ks[i % len(ks)], i % 2 == 0) for i in range(150)
        ]
        try:
            results, errors = _hammer(batcher, requests, n_threads=6)
        finally:
            batcher.close()
        assert errors == []
        for request_id, user, k, exclude_seen in requests:
            items, scores = results[request_id]
            ref_items, ref_scores = reference.recommend(user, k, exclude_seen=exclude_seen)
            np.testing.assert_array_equal(items, ref_items)
            np.testing.assert_array_equal(scores, ref_scores)

    def test_storm_actually_coalesces(self, artifact_path):
        """With a gathering window and racing threads, batches must form."""
        service = RecommenderService(artifact_path, cache_size=0)
        batcher = MicroBatcher(service, max_batch=64, max_wait_s=0.05)
        requests = [(i, i % service.n_users, 10, True) for i in range(64)]
        try:
            _, errors = _hammer(batcher, requests, n_threads=16)
            stats = batcher.stats()
        finally:
            batcher.close()
        assert errors == []
        assert stats["requests"] == 64
        assert stats["batches"] < 64, "no coalescing happened at all"
        assert stats["coalesced"] == 64 - stats["batches"]
        assert stats["max_batch"] >= 2
        assert stats["mean_batch"] == pytest.approx(64 / stats["batches"])


class TestFailurePaths:
    def test_bad_user_raises_synchronously_without_poisoning(self, artifact_path):
        service = RecommenderService(artifact_path, cache_size=0)
        batcher = MicroBatcher(service, max_batch=8)
        try:
            with pytest.raises(BadRequestError):
                batcher.recommend(service.n_users + 5, 10)
            with pytest.raises(BadRequestError):
                batcher.recommend(0, 0)
            # The batcher still serves good requests afterwards.
            items, _ = batcher.recommend(0, 5)
            assert len(items) == 5
        finally:
            batcher.close()

    def test_close_flushes_then_refuses(self, artifact_path):
        service = RecommenderService(artifact_path, cache_size=0)
        batcher = MicroBatcher(service, max_batch=8)
        items, _ = batcher.recommend(1, 5)
        assert len(items) == 5
        batcher.close()
        with pytest.raises(ServeError):
            batcher.recommend(1, 5)

    def test_max_batch_must_be_positive(self, artifact_path):
        service = RecommenderService(artifact_path, cache_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(service, max_batch=0)

    def test_responses_are_private_copies(self, artifact_path):
        """Mutating a returned array must not corrupt later responses."""
        service = RecommenderService(artifact_path)
        batcher = MicroBatcher(service, max_batch=8)
        try:
            items, scores = batcher.recommend(2, 5)
            items[:] = -1
            scores[:] = np.nan
            again_items, again_scores = batcher.recommend(2, 5)
            assert np.all(again_items >= 0)
            assert np.all(np.isfinite(again_scores) | (again_scores == -np.inf))
        finally:
            batcher.close()
