"""Retrieval ↔ offline parity: ``--retrieval`` must never change a response.

The recall-floor contract of ``repro.retrieval``, asserted at the
service layer for **every** model in the registry: a service built with
``retrieval="blockwise"`` or ``retrieval="bucketed"`` (default, exact
parameters) returns *identical* ranked item ids to the offline
evaluator's :func:`repro.eval.topk_ranking` at ``k ∈ {1, 10, 50}`` —
the same guarantee :mod:`tests.test_serve_parity` pins for the exact
path.  Score-fns with no reduced form (``dense``,
``two_channel_lorentz``) must degrade to the exact scoring path inside
the index, recorded in provenance, with recall exactly 1.0 — the golden
serve fixture locks this end to end against committed rankings.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.eval import topk_ranking
from repro.models import MODEL_REGISTRY, TrainConfig
from repro.serve import RecommenderService, export_model, load_artifact

MODEL_NAMES = sorted(MODEL_REGISTRY)
PARITY_KS = (1, 10, 50)
INDEX_KINDS = ("blockwise", "bucketed")

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "serve"
GOLDEN_ARTIFACT = FIXTURE_DIR / "golden_model.npz"
GOLDEN_TOPK = FIXTURE_DIR / "golden_topk.json"

_CACHE: dict[str, tuple] = {}


@pytest.fixture(scope="module")
def frozen(tiny_split, tmp_path_factory):
    """Factory: train + export one registry model, serve it under every
    retrieval kind (memoised across the module)."""

    def build(name: str):
        if name not in _CACHE:
            model = MODEL_REGISTRY[name](tiny_split.train, TrainConfig(epochs=1, seed=3))
            model.fit(tiny_split)
            safe = name.replace("+", "_")
            path = tmp_path_factory.mktemp("artifacts") / f"{safe}.npz"
            export_model(model, path)
            artifact = load_artifact(path)
            services = {
                kind: RecommenderService(artifact, retrieval=kind)
                for kind in ("exact",) + INDEX_KINDS
            }
            _CACHE[name] = (model, artifact, services)
        return _CACHE[name]

    yield build
    _CACHE.clear()


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_indexed_topk_identical_to_evaluator(frozen, tiny_split, name):
    """Indexed serving == the offline evaluator's ranked lists, exactly,
    for every registry model × index kind × k — the ISSUE's recall floor
    for the exact-parameter indexes is 1.0 by construction."""
    model, artifact, services = frozen(name)
    reference = artifact.scorer() if name == "Random" else model
    for k in PARITY_KS:
        users, topk = topk_ranking(reference, tiny_split, on="valid", k=k)
        for kind in INDEX_KINDS:
            service = services[kind]
            for i, user in enumerate(users):
                items, scores = service.recommend(int(user), k=k, exclude_seen=True)
                np.testing.assert_array_equal(
                    items, topk[i], err_msg=f"{name} {kind} user {user} k={k}"
                )
                assert np.all(np.diff(scores) <= 0)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_indexed_service_matches_exact_service_without_masking(frozen, name):
    """exclude_seen=False: indexed ids == the exact service's ids."""
    _, artifact, services = frozen(name)
    exact = services["exact"]
    for kind in INDEX_KINDS:
        service = services[kind]
        for user in range(0, artifact.n_users, 7):
            ref_items, _ = exact.recommend(user, k=10, exclude_seen=False)
            items, scores = service.recommend(user, k=10, exclude_seen=False)
            np.testing.assert_array_equal(items, ref_items, err_msg=f"{name} {kind} {user}")
            np.testing.assert_allclose(
                scores, exact.recommend(user, k=10, exclude_seen=False)[1],
                rtol=1e-12, atol=1e-12,
            )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_index_provenance_reports_perfect_recall(frozen, name):
    """Exact-parameter indexes must measure recall 1.0 on every artifact
    (the build-time sample recorded in stats/provenance)."""
    _, _, services = frozen(name)
    for kind in INDEX_KINDS:
        prov = services[kind].stats()["retrieval"]
        assert prov["index"] == kind
        for value in prov["recall"]["recall"].values():
            assert value == 1.0, f"{name} {kind}: {prov['recall']}"


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_golden_fixture_served_identically_under_any_index(kind):
    """The committed golden artifact is ``dense`` (no reduced form): any
    index kind must fall back to exact scoring, record why, and still
    reproduce the pinned rankings bit-for-bit — ties and all."""
    pinned = json.loads(GOLDEN_TOPK.read_text())
    service = RecommenderService(load_artifact(GOLDEN_ARTIFACT), retrieval=kind)
    prov = service.stats()["retrieval"]
    assert prov["index"] == kind
    assert prov["fallback"], "dense must record a fallback reason"
    for value in prov["recall"]["recall"].values():
        assert value == 1.0
    for flag, exclude_seen in (("true", True), ("false", False)):
        block = pinned[f"exclude_seen_{flag}"]
        for row, user in enumerate(pinned["users"]):
            items, scores = service.recommend(user, k=pinned["k"], exclude_seen=exclude_seen)
            assert [int(i) for i in items] == block["items"][row], f"{kind} user {user}"
            for served, expected in zip(scores, block["scores"][row]):
                assert served == pytest.approx(expected, abs=1e-12), f"{kind} user {user}"
