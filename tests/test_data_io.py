"""Dataset persistence: NPZ round trips and CSV ingestion."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate, load_csv, load_npz, save_npz


class TestNpzRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        ds = generate(SyntheticConfig(n_users=30, n_items=40, seed=5))
        path = tmp_path / "ds.npz"
        save_npz(ds, path)
        loaded = load_npz(path)
        assert loaded.n_users == ds.n_users
        np.testing.assert_array_equal(loaded.user_ids, ds.user_ids)
        np.testing.assert_array_equal(loaded.item_tags, ds.item_tags)
        np.testing.assert_array_equal(loaded.tag_parent, ds.tag_parent)
        assert loaded.tag_names == ds.tag_names
        assert loaded.name == ds.name

    def test_roundtrip_without_parent(self, tmp_path):
        ds = generate(SyntheticConfig(n_users=20, n_items=30, seed=5))
        ds.tag_parent = None
        path = tmp_path / "ds.npz"
        save_npz(ds, path)
        assert load_npz(path).tag_parent is None


class TestCsv:
    def write(self, tmp_path, interactions, tags=None):
        ipath = tmp_path / "interactions.csv"
        ipath.write_text(interactions)
        tpath = None
        if tags is not None:
            tpath = tmp_path / "tags.csv"
            tpath.write_text(tags)
        return ipath, tpath

    def test_basic_load(self, tmp_path):
        ipath, tpath = self.write(
            tmp_path,
            "alice,sushi,3\nalice,pizza,1\nbob,sushi,2\n",
            "sushi,japanese\nsushi,food\npizza,italian\n",
        )
        ds, maps = load_csv(ipath, tpath)
        assert ds.n_users == 2
        assert ds.n_items == 2
        assert ds.n_tags == 3
        assert ds.n_interactions == 3
        sushi = maps.items["sushi"]
        assert ds.item_tags[sushi].sum() == 2

    def test_header_skipped(self, tmp_path):
        ipath, _ = self.write(tmp_path, "user_id,item_id,timestamp\na,x,1\nb,y,2\n")
        ds, _ = load_csv(ipath)
        assert ds.n_interactions == 2

    def test_missing_timestamps_use_row_order(self, tmp_path):
        ipath, _ = self.write(tmp_path, "a,x\na,y\n")
        ds, _ = load_csv(ipath)
        np.testing.assert_array_equal(ds.timestamps, [0.0, 1.0])

    def test_tags_for_unknown_items_ignored(self, tmp_path):
        ipath, tpath = self.write(tmp_path, "a,x,1\n", "ghost,tag1\nx,tag2\n")
        ds, maps = load_csv(ipath, tpath)
        assert "tag2" in maps.tags
        assert "tag1" not in maps.tags

    def test_no_tag_file(self, tmp_path):
        ipath, _ = self.write(tmp_path, "a,x,1\n")
        ds, maps = load_csv(ipath)
        assert ds.n_tags == 1  # placeholder column
        assert ds.item_tags.sum() == 0

    def test_empty_file_raises(self, tmp_path):
        ipath, _ = self.write(tmp_path, "")
        with pytest.raises(ValueError):
            load_csv(ipath)

    def test_id_maps_inverse(self, tmp_path):
        ipath, _ = self.write(tmp_path, "alice,sushi,1\n")
        _, maps = load_csv(ipath)
        assert maps.user_of(0) == "alice"
        assert maps.item_of(0) == "sushi"

    def test_loaded_dataset_trains(self, tmp_path):
        """CSV-loaded data must flow through the whole pipeline."""
        rng = np.random.default_rng(0)
        lines = []
        for u in range(20):
            for v in rng.choice(30, size=8, replace=False):
                lines.append(f"u{u},i{v},{rng.integers(100)}")
        ipath, tpath = self.write(
            tmp_path,
            "\n".join(lines) + "\n",
            "\n".join(f"i{v},t{v % 5}" for v in range(30)) + "\n",
        )
        ds, _ = load_csv(ipath, tpath)
        from repro import TrainConfig, evaluate, temporal_split
        from repro.models import create_model

        split = temporal_split(ds)
        model = create_model("CML", split.train, TrainConfig(dim=8, epochs=2, batch_size=128))
        model.fit(split)
        result = evaluate(model, split, on="test")
        assert 0.0 <= result.recall_at_10 <= 1.0
