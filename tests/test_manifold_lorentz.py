"""Lorentz hyperboloid: constraint, inner product, distances, origin maps."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.manifolds import Lorentz

lor = Lorentz()


@pytest.fixture()
def points(rng):
    return lor.random((6, 5), rng, scale=0.3)  # dim d=4 → 5 coords


class TestConstraint:
    def test_random_on_hyperboloid(self, points):
        inner = lor.inner_np(points, points)
        np.testing.assert_allclose(inner, -1.0, atol=1e-10)

    def test_proj_restores_constraint(self, rng, points):
        noisy = points + rng.normal(scale=0.1, size=points.shape)
        fixed = lor.proj(noisy)
        np.testing.assert_allclose(lor.inner_np(fixed, fixed), -1.0, atol=1e-10)

    def test_time_coordinate_positive(self, points):
        assert (points[:, 0] > 0).all()

    def test_origin(self):
        o = lor.origin(4)
        assert o.shape == (5,)
        np.testing.assert_allclose(lor.inner_np(o, o), -1.0)


class TestInnerAndDistance:
    def test_inner_signature(self):
        x = np.array([1.0, 0.0, 0.0])
        y = np.array([2.0, 1.0, 1.0])
        assert lor.inner_np(x, y) == -2.0 + 0.0

    def test_tensor_inner_matches_numpy(self, points):
        a, b = points[:3], points[3:]
        np.testing.assert_allclose(
            Lorentz.inner(Tensor(a), Tensor(b)).data, lor.inner_np(a, b)
        )

    def test_self_distance_zero(self, points):
        np.testing.assert_allclose(lor.dist_np(points, points), 0.0, atol=1e-6)

    def test_distance_to_origin(self):
        # d(o, x) = arccosh(x_0).
        x = lor.proj(np.array([[0.0, 0.6, 0.0]]))
        o = lor.origin(2)[None, :]
        np.testing.assert_allclose(lor.dist_np(o, x)[0], np.arccosh(x[0, 0]))

    def test_symmetry(self, points):
        np.testing.assert_allclose(
            lor.dist_np(points[:3], points[3:]), lor.dist_np(points[3:], points[:3])
        )

    def test_dist_gradcheck(self, rng):
        x = lor.random((4, 4), rng, scale=0.3)
        y = lor.random((4, 4), rng, scale=0.3)
        check_gradients(lambda a, b: lor.dist(a, b).sum(), [x, y], atol=1e-4)

    def test_sq_dist(self, points):
        d = lor.dist(Tensor(points[:3]), Tensor(points[3:])).data
        d2 = lor.sq_dist(Tensor(points[:3]), Tensor(points[3:])).data
        np.testing.assert_allclose(d2, d * d)


class TestOriginMaps:
    def test_roundtrip(self, rng):
        z = rng.normal(scale=0.5, size=(6, 4))
        np.testing.assert_allclose(lor.logmap0_np(lor.expmap0_np(z)), z, atol=1e-9)

    def test_expmap0_lands_on_hyperboloid(self, rng):
        z = rng.normal(scale=0.8, size=(6, 4))
        x = lor.expmap0_np(z)
        np.testing.assert_allclose(lor.inner_np(x, x), -1.0, atol=1e-9)

    def test_norm_preserved(self, rng):
        # |log_o(x)| equals the geodesic distance from the origin.
        z = rng.normal(scale=0.5, size=(4, 3))
        x = lor.expmap0_np(z)
        o = np.broadcast_to(lor.origin(3), x.shape)
        np.testing.assert_allclose(
            np.linalg.norm(z, axis=1), lor.dist_np(o, x), atol=1e-9
        )

    def test_tensor_maps_match_numpy(self, rng):
        z = rng.normal(scale=0.5, size=(4, 3))
        np.testing.assert_allclose(lor.expmap0(Tensor(z)).data, lor.expmap0_np(z))
        x = lor.expmap0_np(z)
        np.testing.assert_allclose(lor.logmap0(Tensor(x)).data, lor.logmap0_np(x))

    def test_expmap0_np_matches_tensor_path_exactly(self, rng):
        # Both paths floor the divisor with the same sqrt(||z||^2 + MIN_NORM),
        # so they must agree bit-for-bit — including at and near z = 0, where
        # an unguarded norm would divide by zero.
        for z in (
            np.zeros((2, 3)),
            np.full((2, 3), 1e-12),
            rng.normal(scale=0.5, size=(4, 3)),
            rng.normal(scale=20.0, size=(4, 3)),  # exercises the MAX_TANH_ARG clip
        ):
            out_np = lor.expmap0_np(z)
            out_t = lor.expmap0(Tensor(z)).data
            assert np.all(np.isfinite(out_np))
            np.testing.assert_array_equal(out_np, out_t)

    def test_tensor_maps_gradcheck(self, rng):
        z = rng.normal(scale=0.5, size=(3, 3))
        check_gradients(lambda t: lor.expmap0(t).sum(), [z], atol=1e-4)
        x = lor.expmap0_np(z)
        check_gradients(lambda t: lor.logmap0(t).sum(), [x], atol=1e-4)


class TestTangent:
    def test_proj_tangent_orthogonal(self, rng, points):
        v = rng.normal(size=points.shape)
        tangent = lor.proj_tangent(points, v)
        # Tangent vectors satisfy <x, v>_L = 0.
        np.testing.assert_allclose(lor.inner_np(points, tangent), 0.0, atol=1e-9)

    def test_egrad2rgrad_in_tangent(self, rng, points):
        g = rng.normal(size=points.shape)
        rgrad = lor.egrad2rgrad(points, g)
        np.testing.assert_allclose(lor.inner_np(points, rgrad), 0.0, atol=1e-9)

    def test_expmap_stays_on_manifold(self, rng, points):
        g = rng.normal(scale=0.3, size=points.shape)
        v = lor.egrad2rgrad(points, g)
        out = lor.expmap_np(points, v)
        np.testing.assert_allclose(lor.inner_np(out, out), -1.0, atol=1e-9)
