"""Representation-aware scoring (Eqs. 4–7)."""

import numpy as np
import pytest

from repro.taxonomy import bm25_rank, group_item_sets, score_tags


@pytest.fixture()
def item_tags():
    # 30 items × 5 tags. Tag 0 is "general" (appears everywhere); tags 1-2
    # concentrate on the first half, tags 3-4 on the second half.
    rng = np.random.default_rng(0)
    tags = np.zeros((30, 5))
    tags[:, 0] = 1.0
    tags[:15, 1] = 1.0
    tags[:15, 2] = (rng.random(15) > 0.4).astype(float)
    tags[15:, 3] = 1.0
    tags[15:, 4] = (rng.random(15) > 0.4).astype(float)
    return tags


class TestGroupItemSets:
    def test_items_with_any_group_tag(self, item_tags):
        sets = group_item_sets(item_tags, [np.array([1, 2]), np.array([3, 4])])
        np.testing.assert_array_equal(sets[0], np.arange(15))
        np.testing.assert_array_equal(sets[1], np.arange(15, 30))

    def test_empty_group(self, item_tags):
        sets = group_item_sets(item_tags, [np.array([], dtype=int)])
        assert len(sets[0]) == 0

    def test_overlapping_groups_allowed(self, item_tags):
        sets = group_item_sets(item_tags, [np.array([0])])
        np.testing.assert_array_equal(sets[0], np.arange(30))


class TestBM25:
    def test_zero_for_empty_item_set(self, item_tags):
        out = bm25_rank(item_tags, np.array([0, 1]), np.array([], dtype=int))
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_concentrated_tag_ranks_higher_in_own_group(self, item_tags):
        # Tag 1 lives on the first half: its rank there must exceed its
        # (zero) rank on the second half's items — the contrast Eq. 5's
        # structure factor is built on.
        own = bm25_rank(item_tags, np.array([1]), np.arange(15))[0]
        other = bm25_rank(item_tags, np.array([1]), np.arange(15, 30))[0]
        assert own > other
        assert other == 0.0

    def test_absent_tag_scores_zero(self, item_tags):
        out = bm25_rank(item_tags, np.array([3]), np.arange(15))
        assert out[0] == 0.0


class TestScoreTags:
    def test_scores_in_unit_interval(self, item_tags):
        groups = [np.array([0, 1, 2]), np.array([3, 4])]
        scores = score_tags(item_tags, groups)
        for s in scores:
            assert (s >= 0).all() and (s <= 1.0 + 1e-9).all()

    def test_general_tag_scores_below_specific(self, item_tags):
        groups = [np.array([0, 1, 2]), np.array([3, 4])]
        scores = score_tags(item_tags, groups)
        # Tag 0 sits in group 0 but also covers group 1's items: its
        # structure factor must be diluted below the concentrated tags.
        s_general = scores[0][0]
        s_specific = scores[0][1]
        assert s_general < s_specific

    def test_empty_group_scores_empty(self, item_tags):
        scores = score_tags(item_tags, [np.array([], dtype=int), np.array([1])])
        assert len(scores[0]) == 0
        assert len(scores[1]) == 1

    def test_aligned_with_groups(self, item_tags):
        groups = [np.array([1, 2]), np.array([3, 4])]
        scores = score_tags(item_tags, groups)
        assert [len(s) for s in scores] == [2, 2]
