"""Runtime manifold contract checks (REPRO_CHECK_MANIFOLD / check_point)."""

import numpy as np
import pytest

from repro.autodiff import Parameter
from repro.manifolds import (
    Euclidean,
    Lorentz,
    ManifoldCheckError,
    PoincareBall,
    check_klein_point,
)
from repro.manifolds.base import manifold_checks_enabled
from repro.optim import RiemannianSGD


@pytest.fixture
def checks_on(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_MANIFOLD", "1")


@pytest.fixture
def checks_off(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_MANIFOLD", raising=False)


def test_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_MANIFOLD", raising=False)
    assert not manifold_checks_enabled()
    for value in ("0", "false", "off", ""):
        monkeypatch.setenv("REPRO_CHECK_MANIFOLD", value)
        assert not manifold_checks_enabled()
    for value in ("1", "true", "yes"):
        monkeypatch.setenv("REPRO_CHECK_MANIFOLD", value)
        assert manifold_checks_enabled()


# ----------------------------------------------------------------------
# Pass paths
# ----------------------------------------------------------------------
def test_poincare_valid_point_passes(checks_on):
    ball = PoincareBall()
    rng = np.random.default_rng(0)
    x = ball.random((16, 4), rng)
    assert ball.check_point(x) is x


def test_lorentz_valid_point_passes(checks_on):
    lorentz = Lorentz()
    rng = np.random.default_rng(0)
    x = lorentz.random((16, 5), rng)
    assert lorentz.check_point(x) is x
    assert lorentz.check_point(Lorentz.origin(4)) is not None


def test_klein_valid_point_passes(checks_on):
    x = np.full((3, 2), 0.3)
    assert check_klein_point(x) is x


def test_euclidean_accepts_anything_finite(checks_on):
    x = np.array([[1e300, -42.0]])
    assert Euclidean().check_point(x) is x


# ----------------------------------------------------------------------
# Fail paths
# ----------------------------------------------------------------------
def test_poincare_boundary_violation_raises(checks_on):
    ball = PoincareBall()
    bad = np.array([[0.9, 0.9]])  # norm > 1
    with pytest.raises(ManifoldCheckError, match="poincare.*unit ball"):
        ball.check_point(bad)


def test_lorentz_constraint_violation_raises(checks_on):
    lorentz = Lorentz()
    bad = np.array([[2.0, 0.0, 0.0]])  # <x,x>_L = -4, not -1
    with pytest.raises(ManifoldCheckError, match="lorentz.*deviates"):
        lorentz.check_point(bad)


def test_lorentz_lower_sheet_raises(checks_on):
    lorentz = Lorentz()
    bad = np.array([[-1.0, 0.0, 0.0]])  # satisfies <x,x>_L=-1 but x_0 < 0
    with pytest.raises(ManifoldCheckError, match="upper sheet"):
        lorentz.check_point(bad)


def test_klein_violation_raises(checks_on):
    with pytest.raises(ManifoldCheckError, match="klein"):
        check_klein_point(np.array([[0.8, 0.8]]))


def test_non_finite_raises(checks_on):
    with pytest.raises(ManifoldCheckError, match="non-finite"):
        Euclidean().check_point(np.array([np.nan, 1.0]))


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def test_disabled_is_noop_even_for_bad_points(checks_off):
    bad = np.array([[5.0, 5.0]])
    assert PoincareBall().check_point(bad) is bad
    assert check_klein_point(bad) is bad


def test_force_overrides_env(checks_off):
    with pytest.raises(ManifoldCheckError):
        PoincareBall().check_point(np.array([[5.0, 5.0]]), force=True)
    with pytest.raises(ManifoldCheckError):
        check_klein_point(np.array([[5.0, 5.0]]), force=True)


def test_atol_respected(checks_on):
    lorentz = Lorentz()
    x = lorentz.proj(np.array([[0.0, 0.3, 0.1]]))
    nudged = x + 1e-8  # tiny constraint violation
    lorentz.check_point(nudged, atol=1e-4)
    with pytest.raises(ManifoldCheckError):
        lorentz.check_point(nudged, atol=1e-12)


# ----------------------------------------------------------------------
# Optimiser wiring
# ----------------------------------------------------------------------
def test_rsgd_step_checks_points(checks_on):
    lorentz = Lorentz()
    rng = np.random.default_rng(0)
    p = Parameter(lorentz.random((8, 4), rng), manifold=lorentz)
    p.grad = rng.normal(0.0, 0.1, size=p.shape)
    RiemannianSGD([p], lr=0.05).step()  # retraction keeps the invariant
    lorentz.check_point(p.data, force=True)


def test_rsgd_step_raises_on_broken_retraction(checks_on):
    class BrokenLorentz(Lorentz):
        def retract(self, x, v):
            return x + v  # skips proj: leaves the hyperboloid

    manifold = BrokenLorentz()
    rng = np.random.default_rng(0)
    p = Parameter(manifold.random((4, 3), rng), manifold=manifold)
    p.grad = np.ones(p.shape)
    with pytest.raises(ManifoldCheckError):
        RiemannianSGD([p], lr=1.0).step()
