"""Taxonomy.from_parent_array — the existing-taxonomy extension."""

import numpy as np
import pytest

from repro.taxonomy import Taxonomy, ancestor_pairs_from_parent, evaluate_recovery


@pytest.fixture()
def parent():
    # 0, 1 top level; 2,3 under 0; 4 under 1; 5 under 2.
    return np.array([-1, -1, 0, 0, 1, 2])


class TestFromParentArray:
    def test_root_members_all(self, parent):
        taxo = Taxonomy.from_parent_array(parent)
        np.testing.assert_array_equal(np.sort(taxo.root.members), np.arange(6))

    def test_depth_matches(self, parent):
        taxo = Taxonomy.from_parent_array(parent)
        assert taxo.depth == 3  # root(0) → top(1) → child(2) → grandchild(3)

    def test_ancestor_pairs_match_truth(self, parent):
        taxo = Taxonomy.from_parent_array(parent)
        assert taxo.ancestor_pairs() == ancestor_pairs_from_parent(parent)

    def test_perfect_recovery_score(self, parent):
        taxo = Taxonomy.from_parent_array(parent)
        report = evaluate_recovery(taxo, parent)
        assert report.ancestor_f1 == pytest.approx(1.0)

    def test_each_node_retains_own_tag_as_general(self, parent):
        taxo = Taxonomy.from_parent_array(parent)
        for node in taxo.nodes():
            if node.level == 0:
                continue
            assert len(node.general_tags) == 1
            assert node.general_tags[0] in node.members

    def test_flat_parent_array(self):
        taxo = Taxonomy.from_parent_array(np.array([-1, -1, -1]))
        assert taxo.depth == 1
        assert taxo.ancestor_pairs() == set()


class TestFixedTaxonomyInTaxoRec:
    def test_fixed_taxonomy_used_and_not_rebuilt(self, tiny_split):
        from repro.models import TaxoRec, TrainConfig

        oracle = Taxonomy.from_parent_array(tiny_split.train.tag_parent)
        config = TrainConfig(dim=16, tag_dim=4, epochs=3, batch_size=256, lr=0.5, seed=0)
        model = TaxoRec(tiny_split.train, config, fixed_taxonomy=oracle)
        model.fit(tiny_split)
        assert model.taxonomy is oracle
