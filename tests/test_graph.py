"""BipartiteGraph propagation vs naive reference implementations."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.data import InteractionDataset
from repro.models import BipartiteGraph


@pytest.fixture()
def small_graph():
    ds = InteractionDataset(
        n_users=3,
        n_items=4,
        n_tags=1,
        user_ids=np.array([0, 0, 1, 2, 2, 2]),
        item_ids=np.array([0, 1, 1, 1, 2, 3]),
        timestamps=np.zeros(6),
        item_tags=np.zeros((4, 1)),
    )
    return ds, BipartiteGraph(ds)


class TestPropagation:
    def test_degrees(self, small_graph):
        _, g = small_graph
        np.testing.assert_array_equal(g.deg_users, [2, 1, 3])
        np.testing.assert_array_equal(g.deg_items, [1, 3, 1, 1])

    def test_mean_propagation_matches_naive(self, small_graph, rng):
        ds, g = small_graph
        ux = rng.normal(size=(3, 5))
        vx = rng.normal(size=(4, 5))
        new_u, new_v = g.propagate_mean(Tensor(ux), Tensor(vx))
        # Naive: user 0 neighbours items {0,1}.
        np.testing.assert_allclose(new_u.data[0], (vx[0] + vx[1]) / 2)
        np.testing.assert_allclose(new_u.data[1], vx[1])
        np.testing.assert_allclose(new_v.data[1], (ux[0] + ux[1] + ux[2]) / 3)

    def test_sym_propagation_matches_naive(self, small_graph, rng):
        ds, g = small_graph
        ux = rng.normal(size=(3, 2))
        vx = rng.normal(size=(4, 2))
        new_u, new_v = g.propagate_sym(Tensor(ux), Tensor(vx))
        expected_u0 = vx[0] / np.sqrt(2 * 1) + vx[1] / np.sqrt(2 * 3)
        np.testing.assert_allclose(new_u.data[0], expected_u0)

    def test_isolated_nodes_get_zeros(self, rng):
        ds = InteractionDataset(
            n_users=2,
            n_items=2,
            n_tags=1,
            user_ids=np.array([0]),
            item_ids=np.array([0]),
            timestamps=np.zeros(1),
            item_tags=np.zeros((2, 1)),
        )
        g = BipartiteGraph(ds)
        new_u, new_v = g.propagate_mean(Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(2, 3))))
        np.testing.assert_array_equal(new_u.data[1], np.zeros(3))
        np.testing.assert_array_equal(new_v.data[1], np.zeros(3))

    def test_residual_gcn_zero_layers_identity(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        su, sv = g.residual_gcn(Tensor(ux), Tensor(vx), 0)
        np.testing.assert_array_equal(su.data, ux)

    def test_residual_gcn_one_layer_mean(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        su, sv = g.residual_gcn(Tensor(ux), Tensor(vx), 1, norm="mean")
        agg_u, _ = g.propagate_mean(Tensor(ux), Tensor(vx))
        np.testing.assert_allclose(su.data, ux + agg_u.data)

    def test_residual_gcn_one_layer_sym_default(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        su, sv = g.residual_gcn(Tensor(ux), Tensor(vx), 1)
        agg_u, _ = g.propagate_sym(Tensor(ux), Tensor(vx))
        np.testing.assert_allclose(su.data, ux + agg_u.data)

    def test_lightgcn_layer_mean(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        su, sv = g.lightgcn(Tensor(ux), Tensor(vx), 1)
        pu, pv = g.propagate_sym(Tensor(ux), Tensor(vx))
        np.testing.assert_allclose(su.data, (ux + pu.data) / 2)

    def test_gradients_flow_through_gcn(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))

        def f(u, v):
            su, sv = g.residual_gcn(u, v, 2)
            return (su * su).sum() + (sv * sv).sum()

        check_gradients(f, [ux, vx], atol=1e-5)

    def test_gradients_flow_through_lightgcn(self, small_graph, rng):
        _, g = small_graph
        ux, vx = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))

        def f(u, v):
            su, sv = g.lightgcn(u, v, 2)
            return (su * su).sum() + (sv * sv).sum()

        check_gradients(f, [ux, vx], atol=1e-5)
