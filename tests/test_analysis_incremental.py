"""Incremental cache and baseline tests.

The cache is keyed by content hashes (per file, plus a combined key for
the project pass) and by the ruleset signature, so a warm re-run of an
unchanged tree does no parsing or rule dispatch at all — the test asserts
the resulting >= 5x wall-clock speedup.  The baseline grandfathers
existing findings by a line-number-independent fingerprint.
"""

import json
import time
from pathlib import Path

from repro.analysis import (
    Baseline,
    Violation,
    analyze_paths,
    fingerprint,
    split_by_baseline,
)

REPO_ROOT = Path(__file__).parents[1]
FIXTURE_PROJECT = REPO_ROOT / "tests" / "fixtures" / "lint_project"

BAD_SOURCE = "A = 1e-12\nB = 1e-12\n"


def _copy_fixture_project(tmp_path):
    root = tmp_path / "proj"
    for path in FIXTURE_PROJECT.rglob("*.py"):
        dest = root / path.relative_to(FIXTURE_PROJECT)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(path.read_text(encoding="utf-8"), encoding="utf-8")
    return root


class TestCacheCorrectness:
    def test_warm_run_returns_identical_findings(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        cold = analyze_paths([root], cache_path=cache)
        warm = analyze_paths([root], cache_path=cache)
        assert cold and warm == cold

    def test_cache_file_is_written_with_signature_and_entries(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        analyze_paths([root], cache_path=cache)
        payload = json.loads(cache.read_text())
        assert payload["signature"]
        assert payload["files"] and payload["project"]["violations"]

    def test_edited_file_is_reanalysed(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        analyze_paths([root], cache_path=cache)
        target = root / "src" / "repro" / "ops.py"
        # Repair the diverged twin: reorder the reference's parameters.
        source = target.read_text(encoding="utf-8").replace(
            "def blend_reference(a, b, weight):", "def blend_reference(a, weight, b):"
        )
        target.write_text(source, encoding="utf-8")
        warm = analyze_paths([root], cache_path=cache)
        assert all("diverged" not in v.message for v in warm)

    def test_new_file_invalidates_project_pass_only(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        before = analyze_paths([root], cache_path=cache)
        (root / "src" / "repro" / "extra.py").write_text("def lone_reference(x):\n    return x\n")
        after = analyze_paths([root], cache_path=cache)
        assert len(after) == len(before) + 1
        assert any("lone_reference" in v.message for v in after)

    def test_different_ruleset_does_not_reuse_stale_entries(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        narrowed = analyze_paths([root], select=["untracked-parameter"], cache_path=cache)
        assert {v.rule for v in narrowed} == {"untracked-parameter"}
        full = analyze_paths([root], cache_path=cache)
        assert {v.rule for v in full} > {"untracked-parameter"}

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        root = _copy_fixture_project(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        findings = analyze_paths([root], cache_path=cache)
        assert findings  # analysis proceeds as if cold


class TestCacheSpeed:
    def test_warm_run_is_at_least_5x_faster_than_cold(self, tmp_path):
        cache = tmp_path / "cache.json"
        tree = [REPO_ROOT / "src"]
        t0 = time.perf_counter()
        cold = analyze_paths(tree, cache_path=cache)
        cold_s = time.perf_counter() - t0
        warm_s = []
        for _ in range(3):
            t0 = time.perf_counter()
            warm = analyze_paths(tree, cache_path=cache)
            warm_s.append(time.perf_counter() - t0)
        assert warm == cold
        best_warm = min(warm_s)
        assert best_warm * 5 <= cold_s, (
            f"warm {best_warm:.4f}s vs cold {cold_s:.4f}s — cache is not "
            "skipping parse/rule dispatch"
        )


class TestBaseline:
    def _violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        return analyze_paths([bad]), bad

    def test_round_trip_grandfathers_everything(self, tmp_path):
        violations, _ = self._violations(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline().write(path, violations)
        baseline = Baseline.load(path)
        new, grandfathered = split_by_baseline(violations, baseline)
        assert new == [] and len(grandfathered) == len(violations)

    def test_new_finding_is_not_masked(self, tmp_path):
        violations, bad = self._violations(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline().write(path, violations)
        bad.write_text(BAD_SOURCE + "C = 1e-13\n")
        updated = analyze_paths([bad])
        new, grandfathered = split_by_baseline(updated, Baseline.load(path))
        assert len(grandfathered) == 2
        assert [v.line for v in new] == [3]

    def test_fingerprint_survives_line_renumbering(self, tmp_path):
        violations, bad = self._violations(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline().write(path, violations)
        # Push the same findings two lines down: fingerprints must hold.
        bad.write_text("# header\n# comment\n" + BAD_SOURCE)
        moved = analyze_paths([bad])
        new, grandfathered = split_by_baseline(moved, Baseline.load(path))
        assert new == [] and len(grandfathered) == 2

    def test_repeated_identical_lines_fingerprint_by_occurrence(self):
        a = Violation("r", "p.py", 1, 1, "m", snippet="x = 1e-12")
        b = Violation("r", "p.py", 9, 1, "m", snippet="x = 1e-12")
        assert fingerprint(a, 0) != fingerprint(b, 1)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}

    def test_committed_repo_baseline_is_loadable_and_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries == {}
