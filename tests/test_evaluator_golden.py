"""Golden regression test for the evaluation pipeline.

Freezes a tiny seeded dataset plus a quantised score matrix
(``tests/fixtures/golden_eval.npz``) and pins Recall@K / NDCG@K to twelve
decimal places.  The scores are rounded to one decimal, so ties are
common and the deterministic ``(-score, item_id)`` tiebreak in
``rank_topk`` is load-bearing: any change to masking, ranking order or
metric arithmetic shows up here as a hard failure.

The fixture stores the *score matrix* rather than embeddings on purpose —
replaying scores sidesteps BLAS/platform variation in matrix products, so
the pinned digits are reproducible bit-for-bit anywhere.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate, temporal_split
from repro.eval import evaluate, evaluate_reference, rank_topk, rank_topk_reference

FIXTURE = Path(__file__).parent / "fixtures" / "golden_eval.npz"

GOLDEN = {
    "test": {
        "Recall@10": 0.24218749999999997,
        "Recall@20": 0.5859375,
        "NDCG@10": 0.167124991464983,
        "NDCG@20": 0.28620136384574896,
    },
    "valid": {
        "Recall@10": 0.2890625,
        "Recall@20": 0.44270833333333337,
        "NDCG@10": 0.1431686136483566,
        "NDCG@20": 0.19595355047181834,
    },
}


class _FrozenScores:
    def __init__(self, scores: np.ndarray):
        self.scores = scores

    def score_users(self, users):
        return self.scores[np.asarray(users)]


@pytest.fixture(scope="module")
def golden_scores() -> np.ndarray:
    return np.load(FIXTURE)["scores"]


@pytest.fixture(scope="module")
def golden_split():
    cfg = SyntheticConfig(
        n_users=32,
        n_items=48,
        branching=(2, 3),
        mean_interactions=12.0,
        seed=11,
        name="golden",
    )
    return temporal_split(generate(cfg))


def test_fixture_shape_matches_dataset(golden_scores, golden_split):
    ds = golden_split.train
    assert golden_scores.shape == (ds.n_users, ds.n_items)
    # Quantised to one decimal => ties exist and the id tiebreak matters.
    assert np.allclose(golden_scores, np.round(golden_scores, 1))


@pytest.mark.parametrize("on", ["test", "valid"])
def test_metrics_pinned_to_twelve_decimals(golden_scores, golden_split, on):
    result = evaluate(_FrozenScores(golden_scores), golden_split, on=on)
    for metric, expected in GOLDEN[on].items():
        assert result.get(metric) == pytest.approx(expected, abs=1e-12), metric


@pytest.mark.parametrize("on", ["test", "valid"])
def test_reference_evaluator_agrees_on_golden_data(golden_scores, golden_split, on):
    fast = evaluate(_FrozenScores(golden_scores), golden_split, on=on)
    slow = evaluate_reference(_FrozenScores(golden_scores), golden_split, on=on)
    for metric in GOLDEN[on]:
        assert fast.get(metric) == pytest.approx(slow.get(metric), abs=1e-10), metric


def test_tie_handling_is_stable_on_golden_scores(golden_scores):
    """The quantised matrix has many exact ties; ranking must break them by id."""
    topk = rank_topk(golden_scores, 10)
    np.testing.assert_array_equal(topk, rank_topk_reference(golden_scores, 10))
    rows, cols = np.nonzero(np.diff(np.sort(golden_scores, axis=1), axis=1) == 0)
    assert len(rows) > 0, "fixture lost its ties; regenerate with quantised scores"
    # Within each row, equal scores must appear in ascending item-id order.
    for r in range(topk.shape[0]):
        s = golden_scores[r, topk[r]]
        for j in range(9):
            if s[j] == s[j + 1]:
                assert topk[r, j] < topk[r, j + 1]
