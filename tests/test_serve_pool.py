"""Multi-process serving: pool parity, hot swap under load, clean drain.

The real thing — forked worker processes, a live shard router, actual
sockets.  Three contracts are locked here:

* **Parity** — a ``workers × shards`` pool answers every user with
  exactly the bytes a single in-process service would produce;
* **Hot swap under load** — while clients hammer the router, an atomic
  symlink flip deploys a new artifact; every response observed during
  the deploy must match *entirely* the old artifact or *entirely* the
  new one (a response matching neither is a torn read), and the pool
  must converge to the new artifact;
* **Bounded drain** — ``max_requests=N`` completes exactly N responses,
  every one fully written, even when all N arrive concurrently (the
  regression that motivated counting completed responses instead of
  accepted connections).
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    RecommenderService,
    WorkerPool,
    create_server,
    export_payload,
    export_shared,
    publish_artifact,
    serve_until_drained,
    shard_for_user,
)


@pytest.fixture(scope="module")
def artifacts(tiny_split, tmp_path_factory):
    """Two distinguishable artifacts (npz + shared bundle) and a link dir."""
    root = tmp_path_factory.mktemp("pool")
    train = tiny_split.train
    out = {}
    for seed, name in ((1, "DenseV1"), (2, "DenseV2")):
        rng = np.random.default_rng(seed)
        npz = root / f"{name}.npz"
        export_payload(
            npz,
            score_fn="dense",
            arrays={"scores": rng.random((train.n_users, train.n_items))},
            train=train,
            model_name=name,
        )
        out[name] = {"npz": npz, "bundle": export_shared(npz, root / f"{name}.bundle")}
    out["root"] = root
    return out


def _get(base: tuple[str, int], path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(*base, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


@pytest.fixture()
def router_for(artifacts):
    """Factory: spin a pool + router, yield the base address, clean up."""
    cleanups = []

    def start(artifact_path, n_workers, n_shards, **pool_kwargs):
        pool = WorkerPool(artifact_path, n_workers=n_workers, n_shards=n_shards,
                          **pool_kwargs)
        router = pool.create_router()
        thread = threading.Thread(target=router.serve_forever, daemon=True)
        thread.start()

        def cleanup():
            router.shutdown()
            router.server_close()
            thread.join(timeout=10)
            pool.stop()

        cleanups.append(cleanup)
        return pool, router.server_address[:2]

    yield start
    for cleanup in reversed(cleanups):
        cleanup()


class TestPoolParity:
    def test_two_workers_four_shards_bit_identical(self, artifacts, router_for):
        reference = RecommenderService(artifacts["DenseV1"]["npz"], cache_size=0)
        _, base = router_for(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=4,
                             micro_batch=8)
        for user in range(reference.n_users):
            status, body = _get(base, f"/recommend?user={user}&k=10")
            assert status == 200, body
            ref_items, ref_scores = reference.recommend(user, k=10)
            assert body["items"] == [int(i) for i in ref_items], f"user {user}"
            assert body["scores"] == [float(s) for s in ref_scores], f"user {user}"

    def test_score_routes_to_owning_worker(self, artifacts, router_for):
        reference = RecommenderService(artifacts["DenseV1"]["npz"], cache_size=0)
        _, base = router_for(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=2)
        conn = http.client.HTTPConnection(*base, timeout=60)
        try:
            for user in range(0, reference.n_users, 9):
                payload = json.dumps({"user": user, "items": [0, 3, 5]}).encode()
                conn.request("POST", "/score", body=payload,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                body = json.loads(response.read().decode("utf-8"))
                assert response.status == 200, body
                assert body["scores"] == [float(s) for s in reference.score(user, [0, 3, 5])]
        finally:
            conn.close()

    def test_router_health_and_stats_aggregate(self, artifacts, router_for):
        _, base = router_for(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=2)
        status, health = _get(base, "/health")
        assert status == 200 and health["status"] == "ok"
        assert health["n_workers"] == 2 and len(health["workers"]) == 2
        for user in range(10):
            _get(base, f"/recommend?user={user}&k=3")
        _, stats = _get(base, "/stats")
        assert stats["requests"]["recommend"] == 10
        assert len(stats["workers"]) == 2

    def test_worker_rejects_misrouted_user_with_421(self, artifacts):
        """Talking to a worker directly (bypassing the router) trips ownership."""
        with WorkerPool(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=2) as pool:
            n_users = RecommenderService(artifacts["DenseV1"]["npz"]).n_users
            # Find a user owned by worker 1 and send it to worker 0.
            foreign = next(u for u in range(n_users) if shard_for_user(u, 2) == 1)
            status, body = _get(pool.addresses[0], f"/recommend?user={foreign}&k=3")
            assert status == 421
            assert body["type"] == "ShardRoutingError"

    def test_dead_worker_surfaces_as_502_not_collapse(self, artifacts, router_for):
        pool, base = router_for(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=2)
        n_users = RecommenderService(artifacts["DenseV1"]["npz"]).n_users
        dead_worker = 1
        os.kill(pool.processes[dead_worker].pid, signal.SIGKILL)
        pool.processes[dead_worker].join(timeout=10)
        victim = next(
            u for u in range(n_users)
            if pool.shard_map.worker_for_user(u) == dead_worker
        )
        survivor = next(
            u for u in range(n_users)
            if pool.shard_map.worker_for_user(u) != dead_worker
        )
        status, body = _get(base, f"/recommend?user={victim}&k=3")
        assert status == 502, body
        status, _ = _get(base, f"/recommend?user={survivor}&k=3")
        assert status == 200
        status, health = _get(base, "/health")
        assert status == 503 and health["status"] == "degraded"


class TestHotSwapUnderLoad:
    def test_no_torn_responses_and_convergence(self, artifacts, router_for):
        ref_v1 = RecommenderService(artifacts["DenseV1"]["npz"], cache_size=0)
        ref_v2 = RecommenderService(artifacts["DenseV2"]["npz"], cache_size=0)
        link = artifacts["root"] / "current-swap-test"
        publish_artifact(artifacts["DenseV1"]["bundle"], link)
        _, base = router_for(link, n_workers=2, n_shards=2, hot_swap_poll_s=0.05)

        n_users = ref_v1.n_users
        stop = threading.Event()
        torn: list = []
        observed_versions: set[str] = set()

        def hammer(seed: int):
            conn = http.client.HTTPConnection(*base, timeout=60)
            user = seed
            try:
                while not stop.is_set():
                    user = (user + 7) % n_users
                    conn.request("GET", f"/recommend?user={user}&k=10")
                    response = conn.getresponse()
                    body = json.loads(response.read().decode("utf-8"))
                    if response.status != 200:
                        torn.append((user, body))
                        continue
                    pair = (body["items"], body["scores"])
                    v1 = ref_v1.recommend(user, k=10)
                    v2 = ref_v2.recommend(user, k=10)
                    if pair == ([int(i) for i in v1[0]], [float(s) for s in v1[1]]):
                        observed_versions.add("v1")
                    elif pair == ([int(i) for i in v2[0]], [float(s) for s in v2[1]]):
                        observed_versions.add("v2")
                    else:
                        torn.append((user, body))
            finally:
                conn.close()

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # load against v1 first
        publish_artifact(artifacts["DenseV2"]["bundle"], link)
        deadline = time.time() + 15
        while time.time() < deadline:
            _, health = _get(base, "/health")
            if all(w.get("model") == "DenseV2" for w in health["workers"]):
                break
            time.sleep(0.1)
        else:
            stop.set()
            pytest.fail("pool never converged to the new artifact")
        time.sleep(0.3)  # load against v2 after convergence
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

        assert torn == [], f"torn/failed responses during hot swap: {torn[:3]}"
        assert observed_versions == {"v1", "v2"}, (
            f"hammer only ever saw {observed_versions}; swap not exercised under load"
        )
        # After convergence every user is served from v2, exactly.
        for user in range(0, n_users, 11):
            status, body = _get(base, f"/recommend?user={user}&k=10")
            assert status == 200
            items, scores = ref_v2.recommend(user, k=10)
            assert body["items"] == [int(i) for i in items]
            assert body["scores"] == [float(s) for s in scores]


class TestBoundedDrain:
    """The ``--max-requests`` shutdown-race regression suite."""

    def test_concurrent_burst_drains_exactly_n_complete_responses(self, artifacts):
        service = RecommenderService(artifacts["DenseV1"]["npz"], cache_size=0)
        n = 12
        server = create_server(service, port=0, max_requests=n)
        base = server.server_address[:2]
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(n)

        def client(user: int):
            barrier.wait()
            status, body = _get(base, f"/recommend?user={user}&k=5")
            with lock:
                results.append((status, body))

        threads = [threading.Thread(target=client, args=(u,)) for u in range(n)]
        for thread in threads:
            thread.start()
        serve_until_drained(server)  # returns only after the Nth response is written
        server.server_close()
        for thread in threads:
            thread.join(timeout=10)

        assert server.requests_served == n
        assert len(results) == n
        for status, body in results:
            assert status == 200
            assert len(body["items"]) == 5  # complete body, not a truncated reply
            assert len(body["scores"]) == 5

    def test_bounded_router_drains_cleanly(self, artifacts):
        with WorkerPool(artifacts["DenseV1"]["bundle"], n_workers=2, n_shards=2) as pool:
            router = pool.create_router(max_requests=6)
            base = router.server_address[:2]
            statuses: list[int] = []
            lock = threading.Lock()

            def client(user: int):
                status, _ = _get(base, f"/recommend?user={user}&k=3")
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=client, args=(u,)) for u in range(6)]
            for thread in threads:
                thread.start()
            serve_until_drained(router)
            router.server_close()
            for thread in threads:
                thread.join(timeout=10)
            assert len(statuses) == 6
            assert all(status == 200 for status in statuses)

    def test_serve_until_drained_requires_bounded_server(self, artifacts):
        service = RecommenderService(artifacts["DenseV1"]["npz"])
        server = create_server(service, port=0)
        try:
            with pytest.raises(ValueError):
                serve_until_drained(server)
        finally:
            server.server_close()
