"""Fold-in through the serving stack: swap, provenance, CLI flag.

``fold_into_service`` must ride the existing ``swap_artifact`` /
cache-invalidate path — a folded new user gets recommendations from the
live service without a restart, ``stats()`` surfaces the stream
provenance, and the HTTP subprocess path accepts ``--fold-in`` (single
process only).
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, TrainConfig
from repro.serve import RecommenderService, artifact_from_model, export_model, save_artifact
from repro.serve.cli import serve_main
from repro.stream import StreamState, fold_into_service, write_events

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def cml_artifact(tiny_split):
    model = MODEL_REGISTRY["CML"](tiny_split.train, TrainConfig(epochs=1, seed=3))
    model.fit(tiny_split)
    return artifact_from_model(model, source="test-stream-serve")


def test_stats_stream_block_is_none_before_any_fold(cml_artifact):
    service = RecommenderService(cml_artifact)
    assert service.stats()["stream"] is None


def test_fold_into_service_swaps_and_reports_provenance(cml_artifact):
    service = RecommenderService(cml_artifact, cache_size=8)
    new_user = cml_artifact.n_users
    # Warm the cache so the swap's invalidation is observable.
    service.recommend(0, k=5)

    state = StreamState.from_artifact(cml_artifact)
    state.ingest([(new_user, 1), (new_user, 4), (new_user, 9)])
    folded = fold_into_service(service, state)

    assert service.artifact is folded
    assert service.artifact.n_users == cml_artifact.n_users + 1
    stream = service.stats()["stream"]
    assert stream["stream_generation"] == 1
    assert stream["folded_users"] == [new_user]
    assert stream["folded_items"] == []

    items, scores = service.recommend(new_user, k=5, exclude_seen=True)
    assert len(items) == 5
    assert np.all(np.isfinite(scores))
    assert not {1, 4, 9} & set(int(i) for i in items)


def test_second_fold_bumps_generation(cml_artifact):
    service = RecommenderService(cml_artifact)
    for generation in (1, 2):
        state = StreamState.from_artifact(service.artifact)
        user = service.artifact.n_users
        state.ingest([(user, 0), (user, 2)])
        fold_into_service(service, state)
        assert service.stats()["stream"]["stream_generation"] == generation
    assert service.artifact.n_users == cml_artifact.n_users + 2


def test_serve_cli_rejects_foldin_with_workers(tmp_path, capsys, cml_artifact):
    path = tmp_path / "cml.npz"
    save_artifact(cml_artifact, path)
    events = write_events([(0, 1)], tmp_path / "events.json")
    assert serve_main([str(path), "--workers", "2", "--fold-in", str(events)]) == 2
    assert "single-process" in capsys.readouterr().err


@pytest.mark.slow
def test_serve_subprocess_folds_events_before_binding(tmp_path, tiny_split):
    """End to end: ``repro serve --fold-in`` answers for the folded user."""
    model = MODEL_REGISTRY["CML"](tiny_split.train, TrainConfig(epochs=1, seed=3))
    model.fit(tiny_split)
    path = tmp_path / "cml.npz"
    export_model(model, path)
    new_user = tiny_split.train.n_users
    events = write_events(
        [(new_user, 0), (new_user, 3)], tmp_path / "events.json"
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(path),
            "--port", "0", "--max-requests", "2", "--fold-in", str(events),
        ],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = None
        for line in proc.stdout:
            if "http://" in line:
                port = int(line.rsplit(":", 1)[1].strip())
                break
        assert port, "server never announced its port"
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/recommend?user={new_user}&k=5", timeout=10
        ) as resp:
            body = json.loads(resp.read())
        assert len(body["items"]) == 5
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats", timeout=10) as resp:
            stats = json.loads(resp.read())
        assert stats["stream"]["folded_users"] == [new_user]
    finally:
        proc.stdout.close()
        proc.wait(timeout=30)
