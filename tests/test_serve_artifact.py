"""The ``repro.model/v1`` artifact: validator, export paths, typed failures.

Covers the document validator (`validate_model_artifact` returns a
problem list, mirroring ``validate_run_result``), the three export
entry points (payload / live model / checkpoint), and every negative
path the loader must turn into a *typed* :class:`ServeError` subclass —
corrupted files, wrong schema tags, unknown score-fn ids, broken CSRs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    MODEL_SCHEMA,
    ArtifactError,
    SchemaMismatchError,
    UnknownScoreFnError,
    export_from_checkpoint,
    export_model,
    export_payload,
    load_artifact,
    validate_model_artifact,
)


def _dense_payload(train, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"scores": rng.random((train.n_users, train.n_items))}


@pytest.fixture()
def artifact_path(tiny_split, tmp_path):
    path = tmp_path / "model.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays=_dense_payload(tiny_split.train),
        train=tiny_split.train,
        model_name="Dense",
    )
    return path


class TestValidator:
    def test_exported_artifact_validates_clean(self, artifact_path):
        artifact = load_artifact(artifact_path)
        assert validate_model_artifact(artifact.meta, artifact.arrays) == []

    def test_non_dict_meta(self):
        assert validate_model_artifact("nope") == ["metadata is not an object"]

    def test_wrong_schema_tag(self, artifact_path):
        meta = dict(load_artifact(artifact_path).meta, schema="repro.model/v0")
        assert any("schema" in p for p in validate_model_artifact(meta))

    def test_missing_keys_reported_by_name(self, artifact_path):
        meta = dict(load_artifact(artifact_path).meta)
        del meta["manifold"], meta["environment"]
        problems = validate_model_artifact(meta)
        assert any("manifold" in p for p in problems)
        assert any("environment" in p for p in problems)

    def test_unknown_score_fn(self, artifact_path):
        meta = dict(load_artifact(artifact_path).meta, score_fn="dot_v99")
        assert any("dot_v99" in p for p in validate_model_artifact(meta))

    def test_dataset_counts_must_match_arrays(self, artifact_path):
        artifact = load_artifact(artifact_path)
        meta = dict(artifact.meta)
        meta["dataset"] = dict(meta["dataset"], n_users=meta["dataset"]["n_users"] + 1)
        problems = validate_model_artifact(meta, artifact.arrays)
        assert any("n_users" in p for p in problems)

    def test_array_shape_mismatch_against_metadata(self, artifact_path):
        artifact = load_artifact(artifact_path)
        meta = dict(artifact.meta)
        meta["arrays"] = {"scores": [1, 1]}
        problems = validate_model_artifact(meta, artifact.arrays)
        assert any("shape" in p for p in problems)

    def test_seen_csr_consistency(self, artifact_path):
        artifact = load_artifact(artifact_path)
        short_indptr = artifact.seen_indptr[:-1]
        problems = validate_model_artifact(artifact.meta, artifact.arrays, short_indptr)
        assert any("indptr" in p for p in problems)
        bad_indices = artifact.seen_indices.copy()
        bad_indices[0] = artifact.n_items + 5
        problems = validate_model_artifact(
            artifact.meta, artifact.arrays, artifact.seen_indptr, bad_indices
        )
        assert any("out of range" in p for p in problems)


class TestExportPayload:
    def test_refuses_missing_required_array(self, tiny_split, tmp_path):
        with pytest.raises(SchemaMismatchError, match="requires array"):
            export_payload(
                tmp_path / "bad.npz",
                score_fn="dot",
                arrays={"user": np.zeros((tiny_split.train.n_users, 4))},
                train=tiny_split.train,
                model_name="Bad",
            )

    def test_refuses_count_mismatch_with_dataset(self, tiny_split, tmp_path):
        with pytest.raises(SchemaMismatchError):
            export_payload(
                tmp_path / "bad.npz",
                score_fn="dense",
                arrays={"scores": np.zeros((3, 4))},
                train=tiny_split.train,
                model_name="Bad",
            )

    def test_scalar_arrays_survive_the_roundtrip(self, tiny_split, tmp_path):
        """0-d arrays (e.g. AMF's aspect_weight) must not come back 1-d."""
        train = tiny_split.train
        rng = np.random.default_rng(1)
        arrays = {
            "user": rng.normal(size=(train.n_users, 4)),
            "item": rng.normal(size=(train.n_items, 4)),
            "user_aspect": rng.normal(size=(train.n_users, 3)),
            "item_aspect": rng.normal(size=(train.n_items, 3)),
            "aspect_weight": np.asarray(0.25, dtype=np.float64),
        }
        path = export_payload(
            tmp_path / "amf.npz",
            score_fn="dot_aspect",
            arrays=arrays,
            train=train,
            model_name="AMF",
        )
        loaded = load_artifact(path)
        assert loaded.arrays["aspect_weight"].shape == ()
        users = np.arange(train.n_users)
        expected = arrays["user"] @ arrays["item"].T + 0.25 * (
            arrays["user_aspect"] @ arrays["item_aspect"].T
        )
        np.testing.assert_allclose(loaded.scorer().score_users(users), expected, atol=1e-12)

    def test_meta_records_manifold_and_environment(self, artifact_path):
        meta = load_artifact(artifact_path).meta
        assert meta["manifold"] == {"space": "none"}
        assert set(meta["environment"]) == {
            "python",
            "numpy",
            "platform",
            "backend",
            "retrieval",
        }
        assert meta["environment"]["backend"] in ("numpy", "fused")
        assert meta["environment"]["retrieval"] in ("exact", "blockwise", "bucketed")
        assert meta["created_unix"] > 0


class TestExportFromCheckpoint:
    def test_run_dir_uses_latest_checkpoint(self, tiny_run_dir, tmp_path):
        out = export_from_checkpoint(tiny_run_dir, tmp_path / "cml.npz")
        artifact = load_artifact(out)
        assert artifact.model_name == "CML"
        assert artifact.score_fn == "neg_sq_euclid"
        assert artifact.meta["source"].endswith("checkpoint_0001.npz")

    def test_explicit_checkpoint_and_best_flag(self, tiny_run_dir, tmp_path):
        ckpt = tiny_run_dir / "checkpoint_0001.npz"
        final = load_artifact(export_from_checkpoint(ckpt, tmp_path / "final.npz"))
        best = load_artifact(export_from_checkpoint(ckpt, tmp_path / "best.npz", best=True))
        assert final.meta["dataset"] == best.meta["dataset"]

    def test_live_export_matches_checkpoint_export(self, tiny_run_dir, tmp_path):
        """Rebuilding from the checkpoint reproduces the trained weights."""
        from repro.data import load_preset, temporal_split
        from repro.models import TrainConfig, create_model
        from repro.train import load_checkpoint

        ckpt = load_checkpoint(tiny_run_dir / "checkpoint_0001.npz")
        run_info = ckpt.meta["run"]
        split = temporal_split(load_preset(run_info["dataset"], scale=run_info["scale"]))
        model = create_model(run_info["model"], split.train, TrainConfig(**run_info["config"]))
        model.load_state_dict(ckpt.model_state)
        model.load_extra_state(ckpt.meta.get("extra_state") or {})
        live = load_artifact(export_model(model, tmp_path / "live.npz"))
        from_ckpt = load_artifact(
            export_from_checkpoint(tiny_run_dir / "checkpoint_0001.npz", tmp_path / "ckpt.npz")
        )
        for name, arr in live.arrays.items():
            np.testing.assert_array_equal(arr, from_ckpt.arrays[name], err_msg=name)

    def test_empty_run_dir_raises_artifact_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ArtifactError, match="no checkpoint"):
            export_from_checkpoint(empty, tmp_path / "out.npz")

    def test_missing_checkpoint_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            export_from_checkpoint(tmp_path / "nope.npz", tmp_path / "out.npz")

    def test_wrong_checkpoint_schema_raises_schema_error(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, __meta__=np.asarray(json.dumps({"schema": "repro.ckpt/v0"})))
        with pytest.raises(SchemaMismatchError):
            export_from_checkpoint(bad, tmp_path / "out.npz")


class TestLoadArtifactNegativePaths:
    def test_corrupted_file_raises_artifact_error(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ArtifactError):
            load_artifact(garbage)

    def test_truncated_npz_raises_artifact_error(self, artifact_path, tmp_path):
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(artifact_path.read_bytes()[:100])
        with pytest.raises(ArtifactError):
            load_artifact(truncated)

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "missing.npz")

    def test_npz_without_meta_raises_artifact_error(self, tmp_path):
        path = tmp_path / "no_meta.npz"
        np.savez(path, **{"arrays/scores": np.zeros((2, 3))})
        with pytest.raises(ArtifactError, match="__meta__"):
            load_artifact(path)

    def test_unparseable_meta_raises_artifact_error(self, tmp_path):
        path = tmp_path / "bad_meta.npz"
        np.savez(path, __meta__=np.asarray("{not json"))
        with pytest.raises(ArtifactError, match="metadata"):
            load_artifact(path)

    def test_schema_mismatch_is_typed(self, artifact_path, tmp_path):
        rewritten = _rewrite_meta(artifact_path, tmp_path, schema="repro.model/v0")
        with pytest.raises(SchemaMismatchError, match="repro.model/v0"):
            load_artifact(rewritten)

    def test_unknown_score_fn_is_typed(self, artifact_path, tmp_path):
        rewritten = _rewrite_meta(artifact_path, tmp_path, score_fn="dot_v99")
        with pytest.raises(UnknownScoreFnError, match="dot_v99"):
            load_artifact(rewritten)

    def test_missing_seen_csr_raises_schema_error(self, artifact_path, tmp_path):
        path = tmp_path / "no_seen.npz"
        with np.load(artifact_path, allow_pickle=False) as npz:
            keep = {k: npz[k] for k in npz.files if not k.startswith("seen/")}
        np.savez(path, **keep)
        with pytest.raises(SchemaMismatchError, match="seen"):
            load_artifact(path)

    def test_meta_array_shape_drift_raises_schema_error(self, artifact_path, tmp_path):
        path = tmp_path / "drift.npz"
        with np.load(artifact_path, allow_pickle=False) as npz:
            payload = {k: npz[k] for k in npz.files}
        payload["arrays/scores"] = payload["arrays/scores"][:, :-1]
        np.savez(path, **payload)
        with pytest.raises(SchemaMismatchError):
            load_artifact(path)

    def test_all_typed_errors_are_serve_errors(self):
        from repro.serve import BadRequestError, ServeError

        for exc in (ArtifactError, SchemaMismatchError, UnknownScoreFnError, BadRequestError):
            assert issubclass(exc, ServeError)
        assert issubclass(SchemaMismatchError, ArtifactError)
        assert issubclass(UnknownScoreFnError, ArtifactError)


def _rewrite_meta(src, tmp_path, **overrides):
    """Copy an artifact with selected metadata keys overridden."""
    with np.load(src, allow_pickle=False) as npz:
        payload = {k: npz[k] for k in npz.files}
    meta = json.loads(str(payload["__meta__"][()]))
    meta.update(overrides)
    payload["__meta__"] = np.asarray(json.dumps(meta))
    out = tmp_path / "rewritten.npz"
    np.savez(out, **payload)
    return out
