"""Logging helper behaviour."""

import logging

from repro.utils import get_logger


class TestGetLogger:
    def test_returns_logger(self):
        logger = get_logger("repro.test")
        assert isinstance(logger, logging.Logger)

    def test_same_name_same_instance(self):
        assert get_logger("repro.x") is get_logger("repro.x")

    def test_root_has_handler(self):
        get_logger()
        root = logging.getLogger("repro")
        assert root.handlers

    def test_no_duplicate_handlers_on_repeat(self):
        get_logger()
        before = len(logging.getLogger("repro").handlers)
        get_logger()
        after = len(logging.getLogger("repro").handlers)
        assert before == after
