"""Golden regression test for the serving path.

Mirrors ``test_evaluator_golden.py`` one layer up the stack: a committed
``repro.model/v1`` artifact (``tests/fixtures/serve/golden_model.npz``)
holds a quantised dense score matrix over the golden dataset, and
``golden_topk.json`` pins every user's served top-10 — item ids exactly,
scores to twelve decimals — for both ``exclude_seen`` settings.  The
scores are rounded to one decimal so ties are common: any drift in
masking, the ``(-score, item_id)`` tiebreak, cache/index read paths, or
artifact decoding shows up here as a hard failure.

Regenerate after an *intentional* format change with::

    PYTHONPATH=src python tests/test_serve_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate, temporal_split
from repro.serve import RecommenderService, export_payload, load_artifact

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "serve"
ARTIFACT = FIXTURE_DIR / "golden_model.npz"
TOPK = FIXTURE_DIR / "golden_topk.json"
K = 10


def _golden_train():
    cfg = SyntheticConfig(
        n_users=32,
        n_items=48,
        branching=(2, 3),
        mean_interactions=12.0,
        seed=11,
        name="golden",
    )
    return temporal_split(generate(cfg)).train


@pytest.fixture(scope="module")
def pinned() -> dict:
    return json.loads(TOPK.read_text())


@pytest.fixture(scope="module")
def service() -> RecommenderService:
    return RecommenderService(load_artifact(ARTIFACT))


def test_fixture_is_a_valid_artifact_with_ties(service):
    artifact = service.artifact
    assert artifact.meta["schema"] == "repro.model/v1"
    assert (artifact.n_users, artifact.n_items) == (32, 48)
    scores = artifact.arrays["scores"]
    assert np.allclose(scores, np.round(scores, 1))
    rows, _ = np.nonzero(np.diff(np.sort(scores, axis=1), axis=1) == 0)
    assert len(rows) > 0, "fixture lost its ties; regenerate with quantised scores"


def test_seen_csr_matches_regenerated_golden_dataset(service):
    train = _golden_train()
    csr = train.interaction_matrix().tocsr()
    np.testing.assert_array_equal(service.artifact.seen_indptr, csr.indptr)
    np.testing.assert_array_equal(service.artifact.seen_indices, csr.indices)


@pytest.mark.parametrize("flag", ["true", "false"])
def test_topk_pinned_to_twelve_decimals(service, pinned, flag):
    block = pinned[f"exclude_seen_{flag}"]
    exclude_seen = flag == "true"
    for row, user in enumerate(pinned["users"]):
        items, scores = service.recommend(user, k=pinned["k"], exclude_seen=exclude_seen)
        assert [int(i) for i in items] == block["items"][row], f"user {user}"
        for served, expected in zip(scores, block["scores"][row]):
            assert served == pytest.approx(expected, abs=1e-12), f"user {user}"


def test_index_and_cache_read_paths_agree_with_pins(pinned):
    """The pinned lists must survive every serving read path."""
    indexed = RecommenderService(load_artifact(ARTIFACT), cache_size=4, index_k=K)
    block = pinned["exclude_seen_true"]
    for _ in range(2):  # second pass reads the LRU cache
        for row, user in enumerate(pinned["users"]):
            items, _ = indexed.recommend(user, k=pinned["k"])
            assert [int(i) for i in items] == block["items"][row], f"user {user}"


def _regenerate() -> None:
    train = _golden_train()
    rng = np.random.default_rng(1111)
    scores = np.round(rng.random((train.n_users, train.n_items)), 1)
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    export_payload(
        ARTIFACT,
        score_fn="dense",
        arrays={"scores": scores},
        train=train,
        model_name="GoldenDense",
        source="tests/test_serve_golden.py --regenerate",
    )
    service = RecommenderService(load_artifact(ARTIFACT))
    users = list(range(train.n_users))
    doc: dict = {"k": K, "users": users}
    for flag, exclude_seen in (("true", True), ("false", False)):
        items_out, scores_out = [], []
        for user in users:
            items, values = service.recommend(user, k=K, exclude_seen=exclude_seen)
            items_out.append([int(i) for i in items])
            scores_out.append([round(float(v), 12) for v in values])
        doc[f"exclude_seen_{flag}"] = {"items": items_out, "scores": scores_out}
    TOPK.write_text(json.dumps(doc, indent=1) + "\n")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
        print(f"regenerated {ARTIFACT} and {TOPK}")  # repro-lint: disable=print-call
    else:
        print(__doc__)  # repro-lint: disable=print-call
