"""Poincaré ball: distances, Möbius algebra, maps, Riemannian gradients."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.manifolds import PoincareBall

ball = PoincareBall()


@pytest.fixture()
def points(rng):
    return ball.proj(rng.normal(scale=0.3, size=(6, 4)))


class TestProjection:
    def test_inside_points_untouched(self, points):
        np.testing.assert_array_equal(ball.proj(points), points)

    def test_outside_points_pulled_in(self):
        x = np.array([[2.0, 0.0]])
        out = ball.proj(x)
        assert np.linalg.norm(out) < 1.0

    def test_random_inside_ball(self, rng):
        pts = ball.random((100, 8), rng, scale=0.5)
        assert (np.linalg.norm(pts, axis=1) < 1.0).all()


class TestDistance:
    def test_self_distance_zero(self, points):
        np.testing.assert_allclose(ball.dist_np(points, points), 0.0, atol=1e-7)

    def test_symmetry(self, points):
        d1 = ball.dist_np(points[:3], points[3:])
        d2 = ball.dist_np(points[3:], points[:3])
        np.testing.assert_allclose(d1, d2)

    def test_matches_closed_form(self, rng):
        x = ball.proj(rng.normal(scale=0.3, size=3))
        y = ball.proj(rng.normal(scale=0.3, size=3))
        expected = np.arccosh(
            1
            + 2
            * np.sum((x - y) ** 2)
            / ((1 - np.sum(x**2)) * (1 - np.sum(y**2)))
        )
        np.testing.assert_allclose(ball.dist_np(x, y), expected)

    def test_distance_grows_toward_boundary(self):
        # Equal Euclidean steps near the boundary cover more hyperbolic distance.
        a = ball.dist_np(np.array([0.0, 0.0]), np.array([0.1, 0.0]))
        b = ball.dist_np(np.array([0.85, 0.0]), np.array([0.95, 0.0]))
        assert b > a

    def test_tensor_matches_numpy(self, points):
        d_np = ball.dist_np(points[:3], points[3:])
        d_t = ball.dist(Tensor(points[:3]), Tensor(points[3:])).data
        np.testing.assert_allclose(d_t, d_np)

    def test_dist_matrix(self, points):
        m = ball.dist_matrix_np(points[:2], points[2:5])
        assert m.shape == (2, 3)
        np.testing.assert_allclose(m[0, 0], ball.dist_np(points[0], points[2]))

    def test_dist_gradcheck(self, rng):
        x = ball.proj(rng.normal(scale=0.3, size=(4, 3)))
        y = ball.proj(rng.normal(scale=0.3, size=(4, 3)))
        check_gradients(lambda a, b: ball.dist(a, b).sum(), [x, y], atol=1e-4)


class TestMobius:
    def test_identity_addition(self, points):
        zero = np.zeros_like(points)
        np.testing.assert_allclose(ball.mobius_add_np(zero, points), points, atol=1e-12)
        np.testing.assert_allclose(ball.mobius_add_np(points, zero), points, atol=1e-12)

    def test_left_inverse(self, points):
        out = ball.mobius_add_np(-points, points)
        np.testing.assert_allclose(out, 0.0, atol=1e-10)

    def test_result_in_ball(self, rng):
        x = ball.proj(rng.normal(scale=0.5, size=(50, 3)))
        y = ball.proj(rng.normal(scale=0.5, size=(50, 3)))
        out = ball.mobius_add_np(x, y)
        assert (np.linalg.norm(out, axis=1) < 1.0 + 1e-9).all()


class TestExpmap:
    def test_zero_tangent_is_identity(self, points):
        out = ball.expmap_np(points, np.zeros_like(points))
        np.testing.assert_allclose(out, points, atol=1e-9)

    def test_stays_in_ball(self, rng, points):
        v = rng.normal(scale=5.0, size=points.shape)
        out = ball.expmap_np(points, v)
        assert (np.linalg.norm(out, axis=1) < 1.0).all()

    def test_origin_maps_roundtrip(self, rng):
        v = rng.normal(scale=0.4, size=(5, 3))
        np.testing.assert_allclose(ball.logmap0_np(ball.expmap0_np(v)), v, atol=1e-9)


class TestRiemannianGrad:
    def test_scaling_factor(self, rng):
        x = ball.proj(rng.normal(scale=0.3, size=(3, 2)))
        g = rng.normal(size=(3, 2))
        expected = ((1 - np.sum(x**2, axis=1, keepdims=True)) / 2) ** 2 * g
        np.testing.assert_allclose(ball.egrad2rgrad(x, g), expected)

    def test_vanishes_at_boundary(self):
        x = ball.proj(np.array([[0.99999, 0.0]]))
        g = np.ones((1, 2))
        rgrad = ball.egrad2rgrad(x, g)
        assert np.abs(rgrad).max() < 1e-4
