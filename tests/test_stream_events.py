"""Ingest-layer semantics: reports, duplicate detection, event files."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.stream import EVENTS_SCHEMA, Event, StreamState, read_events, write_events


def _state_with_baseline():
    """3 users × 6 items; user 0 has seen {1, 4}, user 2 has seen {0}."""
    indptr = np.array([0, 2, 2, 3], dtype=np.int64)
    indices = np.array([1, 4, 0], dtype=np.int64)
    return StreamState(3, 6, indptr, indices)


def test_ingest_counts_and_new_id_tracking():
    state = _state_with_baseline()
    report = state.ingest(
        [
            Event(0, 2, ts=1.0),  # accepted
            (0, 1),               # duplicate: in the baseline CSR
            (0, 2, 2.0),          # duplicate: just ingested
            (3, 0),               # accepted; user 3 is new
            (1, 7),               # accepted; item 7 is new
        ]
    )
    assert (report.accepted, report.duplicates) == (3, 2)
    assert report.new_users == [3]
    assert report.new_items == [7]
    assert state.n_events == 3
    np.testing.assert_array_equal(state.items_of(0), [2])
    np.testing.assert_array_equal(state.users_of(0), [3])
    np.testing.assert_array_equal(state.pending_users(), [0, 1, 3])
    np.testing.assert_array_equal(state.new_users(), [3])
    np.testing.assert_array_equal(state.new_items(), [7])


def test_generation_bumps_only_when_something_changed():
    state = _state_with_baseline()
    assert state.generation == 0
    state.ingest([(0, 2)])
    assert state.generation == 1
    state.ingest([(0, 2), (0, 1)])  # all duplicates
    assert state.generation == 1
    state.ingest([(1, 1)])
    assert state.generation == 2


def test_negative_ids_are_rejected():
    state = _state_with_baseline()
    with pytest.raises(ValueError, match="non-negative"):
        state.ingest([(-1, 0)])
    with pytest.raises(ValueError, match="non-negative"):
        state.ingest([Event(0, -3)])


def test_events_come_back_sorted_with_timestamps():
    state = _state_with_baseline()
    state.ingest([(1, 5, 9.0), (0, 3, 7.0), (1, 2, 8.0)])
    assert state.events() == [Event(0, 3, 7.0), Event(1, 2, 8.0), Event(1, 5, 9.0)]


def test_event_file_round_trip(tmp_path):
    events = [Event(0, 3, 7.0), (1, 2), (4, 5, 1.5)]
    path = write_events(events, tmp_path / "sub" / "events.json")
    loaded = read_events(path)
    assert loaded == [Event(0, 3, 7.0), Event(1, 2, 0.0), Event(4, 5, 1.5)]
    doc = json.loads(path.read_text())
    assert doc["schema"] == EVENTS_SCHEMA


def test_read_events_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro.run/v1", "events": []}))
    with pytest.raises(ValueError, match=EVENTS_SCHEMA.replace(".", r"\.")):
        read_events(path)
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError):
        read_events(path)


def test_baseline_free_state_treats_everything_as_new_delta():
    state = StreamState(2, 2)
    report = state.ingest([(0, 0), (0, 1), (1, 0)])
    assert report.accepted == 3
    assert report.duplicates == 0
