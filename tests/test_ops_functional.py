"""Free ops (concat/stack/where/...) and functional layers, values + grads."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    binary_cross_entropy_with_logits,
    check_gradients,
    concat,
    dropout,
    hinge,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    ones,
    scatter_mean_rows,
    softmax,
    softplus,
    stack,
    where,
    zeros,
)


class TestFreeOps:
    def test_zeros_ones(self):
        assert zeros((2, 3)).data.sum() == 0.0
        assert ones((2, 3)).data.sum() == 6.0

    def test_concat_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_array_equal(out.data, np.concatenate([a, b], axis=1))

    def test_concat_grad(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        check_gradients(lambda p, q: (concat([p, q], axis=1) ** 2).sum(), [a, b])

    def test_concat_axis0_grad(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(1, 3))
        check_gradients(lambda p, q: (concat([p, q], axis=0) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        out = stack([Tensor(a), Tensor(b)], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda p, q: (stack([p, q]) ** 2).sum(), [a, b])

    def test_where_values_and_grad(self, rng):
        cond = np.array([True, False, True])
        a, b = rng.normal(size=3), rng.normal(size=3)
        out = where(cond, Tensor(a), Tensor(b))
        np.testing.assert_array_equal(out.data, np.where(cond, a, b))
        check_gradients(lambda p, q: (where(cond, p, q) ** 2).sum(), [a, b])

    def test_maximum_grad(self, rng):
        a = rng.normal(size=5)
        b = a + np.sign(rng.normal(size=5)) * 0.5  # no ties
        check_gradients(lambda p, q: maximum(p, q).sum(), [a, b])

    def test_maximum_tie_splits_gradient(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_minimum(self):
        out = minimum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_array_equal(out.data, [1.0, 2.0])

    def test_scatter_mean_rows_values(self):
        vals = Tensor(np.array([[1.0, 1.0], [3.0, 3.0], [10.0, 10.0]]))
        out = scatter_mean_rows(vals, np.array([0, 0, 1]), 3)
        np.testing.assert_array_equal(out.data, [[2.0, 2.0], [10.0, 10.0], [0.0, 0.0]])

    def test_scatter_mean_rows_grad(self, rng):
        vals = rng.normal(size=(4, 2))
        idx = np.array([0, 1, 1, 1])
        check_gradients(lambda v: (scatter_mean_rows(v, idx, 3) ** 2).sum(), [vals])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            softmax(Tensor(x)).data, softmax(Tensor(x + 100.0)).data
        )

    def test_softmax_grad(self, rng):
        x = rng.normal(size=(2, 4))
        w = rng.normal(size=(2, 4))
        check_gradients(lambda a: (softmax(a) * Tensor(w)).sum(), [x])

    def test_logsumexp_matches_numpy(self, rng):
        x = rng.normal(size=(3, 5))
        from scipy.special import logsumexp as scipy_lse

        np.testing.assert_allclose(logsumexp(Tensor(x), axis=1).data, scipy_lse(x, axis=1))

    def test_log_softmax(self, rng):
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(
            log_softmax(Tensor(x)).data, np.log(softmax(Tensor(x)).data)
        )

    def test_hinge(self):
        out = hinge(Tensor([-1.0, 0.5]))
        np.testing.assert_array_equal(out.data, [0.0, 0.5])

    def test_softplus_positive_and_stable(self):
        out = softplus(Tensor([-1000.0, 0.0, 1000.0]))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[1], np.log(2.0))
        np.testing.assert_allclose(out.data[2], 1000.0)

    def test_bce_matches_manual(self, rng):
        logits = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        p = 1.0 / (1.0 + np.exp(-logits))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        out = binary_cross_entropy_with_logits(Tensor(logits), targets)
        np.testing.assert_allclose(out.item(), manual)

    def test_bce_grad(self, rng):
        logits = rng.normal(size=(6,))
        targets = (rng.random(6) > 0.5).astype(float)
        check_gradients(lambda z: binary_cross_entropy_with_logits(z, targets), [logits])

    def test_dropout_off_in_eval(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_zero_rate_identity(self, rng):
        x = Tensor(np.ones((3, 3)))
        out = dropout(x, 0.0, rng)
        np.testing.assert_array_equal(out.data, x.data)
