"""Individual callback behaviours: throughput, checkpointing, logging."""

import logging

import pytest

from repro.models import CML, TrainConfig
from repro.train import Checkpointer, EpochLogger, ModelHooks, ThroughputMeter, Trainer


def _config(**overrides):
    defaults = dict(dim=8, tag_dim=2, epochs=3, batch_size=64, seed=3)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestThroughputMeter:
    def test_counts_all_sampled_triplets(self, tiny_split):
        model = CML(tiny_split.train, _config())
        meter = ThroughputMeter()
        Trainer(model, split=tiny_split, callbacks=[ModelHooks(), meter]).fit()
        n_positives = len(tiny_split.train.user_ids)
        assert meter.total_triplets == 3 * n_positives
        assert meter.total_seconds > 0
        assert meter.triplets_per_sec > 0

    def test_none_before_any_epoch(self):
        assert ThroughputMeter().triplets_per_sec is None

    def test_keeps_history_records_deterministic(self, tiny_split):
        model = CML(tiny_split.train, _config())
        Trainer(model, split=tiny_split, callbacks=[ModelHooks(), ThroughputMeter()]).fit()
        assert all(set(r) == {"epoch", "loss"} for r in model.history)


class TestCheckpointer:
    def test_writes_on_schedule(self, tiny_split, tmp_path):
        model = CML(tiny_split.train, _config(epochs=5))
        ckpt = Checkpointer(tmp_path, every=2)
        Trainer(model, split=tiny_split, callbacks=[ModelHooks(), ckpt]).fit()
        assert [p.name for p in ckpt.written] == ["checkpoint_0001.npz", "checkpoint_0003.npz"]
        for path in ckpt.written:
            assert path.exists()

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            Checkpointer(tmp_path, every=0)


class TestEpochLogger:
    def test_verbose_config_routes_through_logging(self, tiny_split, caplog):
        model = CML(tiny_split.train, _config(epochs=2, verbose=True))
        with caplog.at_level(logging.INFO, logger="repro.train"):
            Trainer(model, split=tiny_split, callbacks=[ModelHooks(), EpochLogger()]).fit()
        assert "CML epoch 0 loss" in caplog.text
        assert "CML epoch 1 loss" in caplog.text

    def test_silent_without_verbose(self, tiny_split, caplog):
        model = CML(tiny_split.train, _config(epochs=1, verbose=False))
        with caplog.at_level(logging.INFO, logger="repro.train"):
            Trainer(model, split=tiny_split, callbacks=[ModelHooks(), EpochLogger()]).fit()
        assert "epoch 0" not in caplog.text

    def test_explicit_flag_overrides_config(self, tiny_split, caplog):
        model = CML(tiny_split.train, _config(epochs=1, verbose=False))
        with caplog.at_level(logging.INFO, logger="repro.train"):
            Trainer(
                model, split=tiny_split, callbacks=[ModelHooks(), EpochLogger(verbose=True)]
            ).fit()
        assert "CML epoch 0 loss" in caplog.text

    def test_logs_validation_score(self, tiny_split, caplog):
        model = CML(tiny_split.train, _config(epochs=2, eval_every=1, verbose=True))
        with caplog.at_level(logging.INFO, logger="repro.train"):
            Trainer(model, split=tiny_split, callbacks=[ModelHooks(), EpochLogger()]).fit()
        assert "valid" in caplog.text
