"""Every registered model: constructs, trains briefly, scores sanely."""

import numpy as np
import pytest

from repro.models import ALL_NAMES, MODEL_REGISTRY, TrainConfig, create_model

SMOKE_CONFIG = dict(dim=16, tag_dim=4, epochs=2, batch_size=256, lr=1e-2)


@pytest.fixture(scope="module", params=sorted(MODEL_REGISTRY))
def fitted(request, tiny_split):
    name = request.param
    config = TrainConfig(seed=0, **SMOKE_CONFIG)
    model = create_model(name, tiny_split.train, config)
    model.fit(tiny_split)
    return name, model, tiny_split


class TestAllModels:
    def test_loss_history_recorded(self, fitted):
        name, model, _ = fitted
        if name in ("Popularity", "Random", "ItemKNN"):
            pytest.skip("trivial models do not train")
        assert len(model.history) >= 1

    def test_scores_shape_and_finite(self, fitted):
        name, model, split = fitted
        users = np.array([0, 3, 5])
        scores = model.score_users(users)
        assert scores.shape == (3, split.train.n_items)
        assert np.isfinite(scores).all()

    def test_scores_not_constant(self, fitted):
        name, model, _ = fitted
        scores = model.score_users(np.array([0, 1]))
        assert scores.std() > 0

    def test_deterministic_scoring(self, fitted):
        name, model, _ = fitted
        if name == "Random":
            pytest.skip("Random draws fresh scores by design")
        a = model.score_users(np.array([2]))
        b = model.score_users(np.array([2]))
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_all_fifteen_present(self):
        assert len(ALL_NAMES) == 15
        assert "TaxoRec" in ALL_NAMES

    def test_ablation_aliases_present(self):
        for alias in ("CML+Agg", "Hyper+CML", "Hyper+CML+Agg"):
            assert alias in MODEL_REGISTRY

    def test_unknown_name_raises(self, tiny_split):
        with pytest.raises(KeyError):
            create_model("SVD++", tiny_split.train)

    def test_create_uses_default_config(self, tiny_split):
        model = create_model("BPRMF", tiny_split.train)
        assert model.config.dim == 64


class TestTrainingLoop:
    def test_loss_decreases_for_bprmf(self, tiny_split):
        config = TrainConfig(dim=16, epochs=15, batch_size=256, lr=5e-3, seed=0)
        model = create_model("BPRMF", tiny_split.train, config)
        model.fit(tiny_split)
        losses = [h["loss"] for h in model.history]
        assert losses[-1] < losses[0]

    def test_early_stopping_restores_best(self, tiny_split):
        config = TrainConfig(
            dim=16, epochs=40, batch_size=256, lr=5e-3, seed=0, eval_every=2, patience=1
        )
        model = create_model("BPRMF", tiny_split.train, config)
        model.fit(tiny_split)
        # Stopped before the epoch cap.
        assert len(model.history) <= 40

    def test_determinism_same_seed(self, tiny_split):
        results = []
        for _ in range(2):
            config = TrainConfig(dim=8, epochs=3, batch_size=256, lr=1e-2, seed=9)
            model = create_model("CML", tiny_split.train, config)
            model.fit(tiny_split)
            results.append(model.score_users(np.array([0])))
        np.testing.assert_array_equal(results[0], results[1])
