"""Documentation contract: the README/docstring quickstart really runs."""

import numpy as np


class TestQuickstartContract:
    def test_package_quickstart(self):
        """The snippet in repro/__init__ must execute verbatim (scaled down)."""
        from repro import TaxoRec, TrainConfig, evaluate, load_preset, temporal_split

        split = temporal_split(load_preset("ciao", scale=0.15))
        model = TaxoRec(
            split.train,
            TrainConfig(dim=16, tag_dim=4, epochs=3, batch_size=256, lr=1.0, seed=0),
        )
        model.fit(split)
        result = evaluate(model, split, on="test")
        assert 0.0 <= result.recall_at_10 <= 1.0

    def test_public_symbols_importable(self):
        import repro

        for symbol in repro.__all__:
            assert getattr(repro, symbol, None) is not None

    def test_version_string(self):
        import repro

        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_taxonomy_render_documented_usage(self):
        """README shows model.taxonomy.render(tag_names) after fit."""
        from repro import TaxoRec, TrainConfig, load_preset, temporal_split

        split = temporal_split(load_preset("ciao", scale=0.15))
        model = TaxoRec(
            split.train,
            TrainConfig(dim=16, tag_dim=4, epochs=7, batch_size=256, lr=1.0, seed=0),
        )
        model.fit(split)
        text = model.taxonomy.render(tag_names=split.train.tag_names)
        assert "level-0" in text
