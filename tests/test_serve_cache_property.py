"""Property tests for the serving LRU cache (Hypothesis, tier-2 ``slow``).

For arbitrary request streams interleaved with invalidations, at any
capacity:

* the cache never exceeds its capacity;
* hit + miss counters always reconcile with the number of ``recommend``
  calls;
* every response — cached, evicted-and-recomputed, or post-invalidation —
  is identical to an uncached service's answer.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.serve import RecommenderService, export_payload, load_artifact

pytestmark = pytest.mark.slow

N_USERS, N_ITEMS = 12, 17


@pytest.fixture(scope="module")
def artifact(tiny_split, tmp_path_factory):
    train = tiny_split.train
    rng = np.random.default_rng(5)
    path = tmp_path_factory.mktemp("prop") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return load_artifact(path)


_REQUEST = st.tuples(
    st.integers(min_value=0, max_value=N_USERS - 1),
    st.integers(min_value=1, max_value=N_ITEMS),
    st.booleans(),
)
_OP = st.one_of(_REQUEST, st.just("invalidate"))


@settings(max_examples=40, deadline=None)
@given(capacity=st.integers(min_value=0, max_value=6), ops=st.lists(_OP, max_size=40))
def test_cache_invariants_hold_for_any_request_stream(artifact, capacity, ops):
    service = RecommenderService(artifact, cache_size=capacity)
    oracle = RecommenderService(artifact, cache_size=0)
    recommend_calls = 0
    for op in ops:
        if op == "invalidate":
            service.invalidate()
            assert service.cache_size == 0
            continue
        user, k, exclude_seen = op
        items, scores = service.recommend(user, k=k, exclude_seen=exclude_seen)
        recommend_calls += 1
        expected_items, expected_scores = oracle.recommend(user, k=k, exclude_seen=exclude_seen)
        np.testing.assert_array_equal(items, expected_items)
        np.testing.assert_array_equal(scores, expected_scores)
        assert service.cache_size <= capacity
    stats = service.stats()["cache"]
    assert stats["hits"] + stats["misses"] == recommend_calls
    assert stats["hits"] + stats["misses"] == service.stats()["requests"]["recommend"]


@settings(max_examples=25, deadline=None)
@given(requests=st.lists(_REQUEST, min_size=1, max_size=25))
def test_invalidation_forces_recompute_with_identical_results(artifact, requests):
    service = RecommenderService(artifact, cache_size=8)
    before = [service.recommend(u, k=k, exclude_seen=e) for u, k, e in requests]
    hits_before = service.stats()["cache"]["hits"]
    service.invalidate()
    after = [service.recommend(u, k=k, exclude_seen=e) for u, k, e in requests]
    for (items_a, scores_a), (items_b, scores_b) in zip(before, after):
        np.testing.assert_array_equal(items_a, items_b)
        np.testing.assert_array_equal(scores_a, scores_b)
    # The first post-invalidation occurrence of each distinct key is a miss.
    distinct = len(set(requests))
    stats = service.stats()["cache"]
    assert stats["misses"] >= distinct
    assert stats["hits"] >= hits_before
