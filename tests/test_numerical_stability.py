"""Numerical-stability and failure-injection tests.

Hyperbolic training fails in characteristic ways — points escaping the
ball, arcosh of values below 1, exploding conformal factors.  These tests
drive the substrate into those corners deliberately.
"""

import numpy as np
import pytest

from repro.autodiff import Parameter, Tensor
from repro.manifolds import Lorentz, PoincareBall, poincare_to_lorentz_np
from repro.optim import RiemannianSGD

ball = PoincareBall()
lor = Lorentz()


class TestBoundaryBehaviour:
    def test_distance_finite_near_boundary(self):
        x = ball.proj(np.array([0.999999, 0.0]))
        y = ball.proj(np.array([-0.999999, 0.0]))
        d = ball.dist_np(x, y)
        assert np.isfinite(d)
        assert d > 10  # genuinely far apart

    def test_distance_gradient_finite_near_boundary(self):
        x = Tensor(ball.proj(np.array([[0.99999, 0.0]])), requires_grad=True)
        y = Tensor(ball.proj(np.array([[-0.99999, 0.0]])))
        ball.dist(x, y).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_poincare_to_lorentz_near_boundary(self):
        x = ball.proj(np.array([[1.0 - 1e-6, 0.0]]))
        out = poincare_to_lorentz_np(x)
        assert np.isfinite(out).all()

    def test_arcosh_at_exactly_one(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x.arcosh()
        assert y.data[0] == 0.0
        y.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_lorentz_dist_identical_points_zero_not_nan(self):
        x = lor.proj(np.array([[0.0, 0.5, 0.2]]))
        d = lor.dist_np(x, x)
        assert d[0] == 0.0


class TestTrainingStability:
    def test_huge_gradients_do_not_escape_ball(self):
        p = Parameter(ball.proj(np.array([[0.9, 0.0]])), manifold=ball)
        opt = RiemannianSGD([p], lr=100.0, max_grad_norm=None)
        target = Tensor(ball.proj(np.array([[-0.9, 0.0]])))
        for _ in range(20):
            opt.zero_grad()
            (ball.dist(p, target) ** 2).sum().backward()
            opt.step()
            assert np.linalg.norm(p.data) < 1.0
            assert np.isfinite(p.data).all()

    def test_lorentz_constraint_survives_large_steps(self):
        p = Parameter(lor.proj(np.array([[0.0, 0.5, 0.5]])), manifold=lor)
        opt = RiemannianSGD([p], lr=50.0)
        target = Tensor(lor.proj(np.array([[0.0, -0.5, -0.5]])))
        for _ in range(20):
            opt.zero_grad()
            lor.sq_dist(p, target).sum().backward()
            opt.step()
            # Relative tolerance: at spatial norms ~e^15 the Lorentzian
            # inner product cancels catastrophically in float64.
            scale = max(float(p.data[0, 0] ** 2), 1.0)
            assert abs(lor.inner_np(p.data, p.data)[0] + 1.0) < 1e-9 * scale

    def test_expmap_overflow_guard(self):
        # cosh of a huge step must not overflow to inf.
        x = lor.proj(np.array([[0.0, 0.1, 0.1]]))
        v = lor.proj_tangent(x, np.array([[0.0, 1e6, -1e6]]))
        out = lor.expmap_np(x, v)
        assert np.isfinite(out).all()

    def test_taxorec_survives_extreme_lr(self, tiny_split):
        from repro.models import TaxoRec, TrainConfig

        config = TrainConfig(dim=16, tag_dim=4, epochs=3, batch_size=256, lr=50.0, seed=0)
        model = TaxoRec(tiny_split.train, config)
        model.fit(tiny_split)
        scores = model.score_users(np.array([0]))
        assert np.isfinite(scores).all()

    def test_degenerate_dataset_single_item(self):
        from repro.data import InteractionDataset
        from repro.models import CML, TrainConfig

        ds = InteractionDataset(
            n_users=3,
            n_items=1,
            n_tags=1,
            user_ids=np.array([0, 1, 2]),
            item_ids=np.array([0, 0, 0]),
            timestamps=np.arange(3, dtype=float),
            item_tags=np.ones((1, 1)),
        )
        model = CML(ds, TrainConfig(dim=4, epochs=2, batch_size=8, seed=0))
        model.fit()  # negatives collide with the only item; must not hang
        assert np.isfinite(model.score_users(np.array([0]))).all()


class TestEinsteinMidpointStability:
    def test_points_near_klein_boundary(self):
        from repro.manifolds import einstein_midpoint_np

        pts = np.array([[0.999999, 0.0], [-0.999999, 0.0]])
        mid = einstein_midpoint_np(pts, np.ones(2))
        assert np.isfinite(mid).all()
        assert np.linalg.norm(mid) < 1.0
