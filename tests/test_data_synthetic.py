"""Synthetic generator: presets, planted taxonomy, statistical shape."""

import numpy as np
import pytest

from repro.data import PRESET_NAMES, SyntheticConfig, compute_stats, generate, load_preset


class TestGenerate:
    def test_deterministic_given_seed(self):
        c = SyntheticConfig(n_users=40, n_items=60, branching=(3, 2), seed=5)
        a, b = generate(c), generate(c)
        np.testing.assert_array_equal(a.user_ids, b.user_ids)
        np.testing.assert_array_equal(a.item_tags, b.item_tags)

    def test_different_seeds_differ(self):
        a = generate(SyntheticConfig(n_users=40, n_items=60, seed=1))
        b = generate(SyntheticConfig(n_users=40, n_items=60, seed=2))
        assert not np.array_equal(a.item_ids, b.item_ids)

    def test_tag_count_matches_branching(self):
        ds = generate(SyntheticConfig(n_users=30, n_items=40, branching=(3, 2)))
        assert ds.n_tags == 3 + 6

    def test_every_user_has_min_interactions(self):
        ds = generate(SyntheticConfig(n_users=50, n_items=80, seed=3))
        counts = np.bincount(ds.user_ids, minlength=ds.n_users)
        assert counts.min() >= 10

    def test_no_duplicate_interactions_per_user(self):
        ds = generate(SyntheticConfig(n_users=40, n_items=60, seed=4))
        pairs = set(zip(ds.user_ids.tolist(), ds.item_ids.tolist()))
        assert len(pairs) == ds.n_interactions

    def test_planted_parent_is_forest(self):
        ds = generate(SyntheticConfig(n_users=30, n_items=40, branching=(3, 2)))
        parent = ds.tag_parent
        assert (parent[:3] == -1).all()  # top level roots
        assert (parent[3:] >= 0).all()

    def test_untagged_items_exist(self):
        ds = generate(
            SyntheticConfig(n_users=30, n_items=200, untagged_item_prob=0.3, seed=0)
        )
        untagged = (ds.item_tags.sum(axis=1) == 0).mean()
        assert 0.1 < untagged < 0.5

    def test_tagged_items_have_leaf_depth_tag(self):
        ds = generate(
            SyntheticConfig(n_users=30, n_items=100, branching=(3, 2), untagged_item_prob=0.0)
        )
        # Every item carries at least its leaf tag.
        assert (ds.item_tags.sum(axis=1) >= 1).all()


class TestPresets:
    def test_four_presets(self):
        assert set(PRESET_NAMES) == {"ciao", "amazon-cd", "amazon-book", "yelp"}

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            load_preset("netflix")

    def test_ciao_has_28_tags(self):
        assert load_preset("ciao", scale=0.2).n_tags == 28

    def test_relative_shape_matches_table1(self):
        """Tag counts grow and density shrinks from ciao to yelp, as in Table I."""
        stats = {n: compute_stats(load_preset(n, scale=0.4)) for n in PRESET_NAMES}
        assert (
            stats["ciao"].n_tags
            < stats["amazon-cd"].n_tags
            < stats["amazon-book"].n_tags
            < stats["yelp"].n_tags
        )
        assert stats["ciao"].density_percent > stats["yelp"].density_percent

    def test_scale_shrinks_entities(self):
        small = load_preset("ciao", scale=0.2)
        big = load_preset("ciao", scale=0.5)
        assert small.n_users < big.n_users
        assert small.n_tags == big.n_tags  # structural, unscaled

    def test_seed_override(self):
        a = load_preset("ciao", scale=0.2, seed=1)
        b = load_preset("ciao", scale=0.2, seed=2)
        assert not np.array_equal(a.item_ids, b.item_ids)
