"""Shard routing properties: the arithmetic the scale-out stack trusts.

Hypothesis property tests over :func:`shard_for_user` / :class:`ShardMap`
— every user lands on exactly one shard, assignments are stable across
calls (the hash is unsalted), striping covers every shard, and
re-sharding ``N → M`` preserves the user → *scores* mapping (what moves
is only which backend answers, never what it answers).  Plus the
:class:`ShardedService` facade contracts: ownership enforcement,
cross-shard batching, swap propagation, and stats aggregation.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.serve import (
    BadRequestError,
    RecommenderService,
    ShardMap,
    ShardRoutingError,
    ShardedService,
    export_payload,
    shard_for_user,
)

users_st = st.integers(min_value=0, max_value=2**40)
shards_st = st.integers(min_value=1, max_value=64)


class TestShardForUser:
    @given(user=users_st, n_shards=shards_st)
    def test_every_user_maps_to_exactly_one_valid_shard(self, user, n_shards):
        shard = shard_for_user(user, n_shards)
        assert isinstance(shard, int)
        assert 0 <= shard < n_shards
        # Exactly one: the function is deterministic, so re-asking yields
        # the same shard — there is no second assignment to disagree with.
        assert shard_for_user(user, n_shards) == shard

    @given(user=users_st)
    def test_single_shard_owns_everyone(self, user):
        assert shard_for_user(user, 1) == 0

    @given(n_shards=st.integers(min_value=2, max_value=16))
    def test_contiguous_ids_spread_over_shards(self, n_shards):
        """The hash must break up contiguous id blocks (a bare modulo wouldn't)."""
        assignments = {shard_for_user(u, n_shards) for u in range(256)}
        assert len(assignments) == n_shards

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_user(3, 0)


class TestShardMap:
    @given(
        user=users_st,
        n_shards=shards_st,
        n_workers=st.integers(min_value=1, max_value=8),
    )
    def test_user_worker_consistent_with_shard_striping(self, user, n_shards, n_workers):
        shard_map = ShardMap(n_shards=n_shards, n_workers=n_workers)
        shard = shard_for_user(user, n_shards)
        worker = shard_map.worker_for_user(user)
        assert worker == shard % n_workers
        assert shard in shard_map.shards_for_worker(worker)

    @given(n_shards=shards_st, n_workers=st.integers(min_value=1, max_value=8))
    def test_workers_partition_the_shard_space(self, n_shards, n_workers):
        shard_map = ShardMap(n_shards=n_shards, n_workers=n_workers)
        owned = [
            shard for w in range(n_workers) for shard in shard_map.shards_for_worker(w)
        ]
        assert sorted(owned) == list(range(n_shards))  # exactly once each

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(n_shards=0, n_workers=1)
        with pytest.raises(ValueError):
            ShardMap(n_shards=4, n_workers=0)
        with pytest.raises(ValueError):
            ShardMap(n_shards=4, n_workers=2).worker_for_shard(4)
        with pytest.raises(ValueError):
            ShardMap(n_shards=4, n_workers=2).shards_for_worker(2)


@pytest.fixture(scope="module")
def artifact_path(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(23)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("router") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return path


@pytest.fixture(scope="module")
def flat(artifact_path):
    return RecommenderService(artifact_path, cache_size=0)


class TestShardedService:
    def test_resharding_preserves_user_to_scores_mapping(self, artifact_path, flat):
        """N → M re-shard: every user's response is unchanged, bit for bit.

        The deployment's shard count is pure topology — re-sharding from
        2 to 5 shards re-routes users to different backends but must
        never change what any user receives.
        """
        n_users = flat.n_users
        before = ShardedService(artifact_path, n_shards=2)
        after = ShardedService(artifact_path, n_shards=5)
        for user in range(n_users):
            ref_items, ref_scores = flat.recommend(user, k=10)
            for deployment in (before, after):
                items, scores = deployment.recommend(user, k=10)
                np.testing.assert_array_equal(items, ref_items, err_msg=f"user {user}")
                np.testing.assert_array_equal(scores, ref_scores, err_msg=f"user {user}")

    def test_partial_ownership_rejects_foreign_users(self, artifact_path):
        """A worker owning a shard subset 421s every user it does not own."""
        n_shards = 4
        owned = (0, 2)
        worker = ShardedService(artifact_path, n_shards=n_shards, shards=owned)
        owned_set = set(owned)
        seen_owned = seen_foreign = 0
        for user in range(worker.n_users):
            if shard_for_user(user, n_shards) in owned_set:
                items, _ = worker.recommend(user, k=5)
                assert len(items) == 5
                seen_owned += 1
            else:
                with pytest.raises(ShardRoutingError):
                    worker.recommend(user, k=5)
                seen_foreign += 1
        assert seen_owned and seen_foreign  # the tiny dataset hits both paths

    def test_recommend_batch_routes_across_shards(self, artifact_path, flat):
        sharded = ShardedService(artifact_path, n_shards=3)
        users = [5, 0, 17, 5, 42, 3]  # duplicates and shard-mixing on purpose
        items, scores = sharded.recommend_batch(users, k=8)
        assert items.shape == (len(users), 8)
        for row, user in enumerate(users):
            ref_items, ref_scores = flat.recommend(user, k=8)
            np.testing.assert_array_equal(items[row], ref_items)
            np.testing.assert_array_equal(scores[row], ref_scores)

    def test_swap_propagates_to_every_shard(self, artifact_path, tiny_split, tmp_path):
        rng = np.random.default_rng(77)
        train = tiny_split.train
        other = tmp_path / "other.npz"
        export_payload(
            other,
            score_fn="dense",
            arrays={"scores": rng.random((train.n_users, train.n_items))},
            train=train,
            model_name="DenseV2",
        )
        sharded = ShardedService(artifact_path, n_shards=3)
        version = sharded.swap_artifact(other)
        assert version == 2
        reference = RecommenderService(other, cache_size=0)
        for user in range(0, sharded.n_users, 7):
            items, scores = sharded.recommend(user, k=6)
            ref_items, ref_scores = reference.recommend(user, k=6)
            np.testing.assert_array_equal(items, ref_items)
            np.testing.assert_array_equal(scores, ref_scores)
        stats = sharded.stats()
        assert stats["artifact"]["version"] == 2
        assert all(s["artifact"]["swaps"] == 1 for s in stats["shards"].values())

    def test_stats_aggregate_request_totals(self, artifact_path):
        sharded = ShardedService(artifact_path, n_shards=3)
        for user in range(12):
            sharded.recommend(user, k=3)
        sharded.score(0, [0, 1, 2])
        stats = sharded.stats()
        assert stats["n_shards"] == 3
        assert stats["owned_shards"] == [0, 1, 2]
        assert stats["requests"] == {"recommend": 12, "score": 1, "total": 13}
        per_shard = sum(
            s["requests"]["recommend"] for s in stats["shards"].values()
        )
        assert per_shard == 12

    def test_invalid_shapes_rejected(self, artifact_path):
        with pytest.raises(BadRequestError):
            ShardedService(artifact_path, n_shards=0)
        with pytest.raises(BadRequestError):
            ShardedService(artifact_path, n_shards=2, shards=())
        with pytest.raises(BadRequestError):
            ShardedService(artifact_path, n_shards=2, shards=(0, 2))
