"""Per-rule fixture tests: detection on the bad twin, silence on the clean twin,
and suppression via a file-level ``# repro-lint: disable=<rule>`` comment."""

from pathlib import Path

import pytest

from repro.analysis import analyze_file, analyze_source

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
# backend-discipline scopes by dotted module name, so its fixtures live in a
# mini src/ tree that module_name_for_path normalises to repro.* modules.
BACKEND_FIXTURES = Path(__file__).parent / "fixtures" / "lint_backend"
RETRIEVAL_FIXTURES = Path(__file__).parent / "fixtures" / "lint_retrieval"
STREAM_FIXTURES = Path(__file__).parent / "fixtures" / "lint_stream"

# (rule, bad fixture, expected violation count, clean twin)
CASES = [
    (
        "unclamped-boundary-op",
        FIXTURES / "manifolds" / "unclamped_boundary_op_bad.py",
        4,
        FIXTURES / "manifolds" / "unclamped_boundary_op_clean.py",
    ),
    (
        "magic-epsilon",
        FIXTURES / "magic_epsilon_bad.py",
        2,
        FIXTURES / "magic_epsilon_clean.py",
    ),
    (
        "global-rng",
        FIXTURES / "global_rng_bad.py",
        2,
        FIXTURES / "global_rng_clean.py",
    ),
    (
        "inplace-tensor-data",
        FIXTURES / "inplace_tensor_data_bad.py",
        2,
        FIXTURES / "inplace_tensor_data_clean.py",
    ),
    (
        "missing-backward",
        FIXTURES / "autodiff" / "missing_backward_bad.py",
        2,
        FIXTURES / "autodiff" / "missing_backward_clean.py",
    ),
    (
        "bare-except",
        FIXTURES / "bare_except_bad.py",
        1,
        FIXTURES / "bare_except_clean.py",
    ),
    (
        "mutable-default-arg",
        FIXTURES / "mutable_default_arg_bad.py",
        2,
        FIXTURES / "mutable_default_arg_clean.py",
    ),
    (
        "print-call",
        FIXTURES / "print_call_bad.py",
        1,
        FIXTURES / "print_call_clean.py",
    ),
    (
        "manifold-double-map",
        FIXTURES / "manifolds" / "manifold_double_map_bad.py",
        2,
        FIXTURES / "manifolds" / "manifold_double_map_clean.py",
    ),
    (
        "mixed-manifold-op",
        FIXTURES / "manifolds" / "mixed_manifold_op_bad.py",
        1,
        FIXTURES / "manifolds" / "mixed_manifold_op_clean.py",
    ),
    (
        "redundant-clamp",
        FIXTURES / "manifolds" / "redundant_clamp_bad.py",
        2,
        FIXTURES / "manifolds" / "redundant_clamp_clean.py",
    ),
    (
        "ndarray-row-loop",
        FIXTURES / "eval" / "ndarray_row_loop_bad.py",
        3,
        FIXTURES / "eval" / "ndarray_row_loop_clean.py",
    ),
    (
        "loop-invariant-rebuild",
        FIXTURES / "eval" / "loop_invariant_rebuild_bad.py",
        1,
        FIXTURES / "eval" / "loop_invariant_rebuild_clean.py",
    ),
    (
        "bad-suppression",
        FIXTURES / "bad_suppression_bad.py",
        2,
        FIXTURES / "bad_suppression_clean.py",
    ),
    (
        "backend-discipline",
        BACKEND_FIXTURES / "src" / "repro" / "manifolds" / "backend_discipline_bad.py",
        3,
        BACKEND_FIXTURES / "src" / "repro" / "manifolds" / "backend_discipline_clean.py",
    ),
    (
        "backend-discipline",
        RETRIEVAL_FIXTURES / "src" / "repro" / "retrieval" / "backend_discipline_bad.py",
        3,
        RETRIEVAL_FIXTURES / "src" / "repro" / "retrieval" / "backend_discipline_clean.py",
    ),
    (
        "backend-discipline",
        STREAM_FIXTURES / "src" / "repro" / "stream" / "backend_discipline_bad.py",
        3,
        STREAM_FIXTURES / "src" / "repro" / "stream" / "backend_discipline_clean.py",
    ),
]

CASE_IDS = [case[0] for case in CASES]


@pytest.mark.parametrize("rule,bad_path,expected,clean_path", CASES, ids=CASE_IDS)
def test_bad_fixture_trips_rule(rule, bad_path, expected, clean_path):
    violations = analyze_file(bad_path)
    matching = [v for v in violations if v.rule == rule]
    assert len(matching) == expected, "\n".join(v.format() for v in violations)
    assert all(v.line > 0 and v.col > 0 for v in matching)
    assert all(str(bad_path.name) in v.path for v in matching)


@pytest.mark.parametrize("rule,bad_path,expected,clean_path", CASES, ids=CASE_IDS)
def test_clean_twin_is_silent_across_all_rules(rule, bad_path, expected, clean_path):
    violations = analyze_file(clean_path)
    assert violations == [], "\n".join(v.format() for v in violations)


@pytest.mark.parametrize("rule,bad_path,expected,clean_path", CASES, ids=CASE_IDS)
def test_file_level_suppression_silences_rule(rule, bad_path, expected, clean_path):
    source = f"# repro-lint: disable={rule}\n" + bad_path.read_text(encoding="utf-8")
    relative = bad_path.relative_to(FIXTURES.parent.parent)
    violations = analyze_source(source, relative.as_posix())
    assert [v for v in violations if v.rule == rule] == []


def test_constants_module_path_is_exempt_from_magic_epsilon():
    violations = analyze_file(FIXTURES / "manifolds" / "constants.py")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_optim_path_is_exempt_from_inplace_tensor_data():
    violations = analyze_file(FIXTURES / "optim" / "inplace_tensor_data_allowed.py")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_cli_filename_is_exempt_from_print_call():
    violations = analyze_file(FIXTURES / "cli.py")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_negative_literal_keyword_is_not_risky():
    source = "import numpy as np\n\ndef f(x):\n    return np.sqrt(np.sum(x, axis=-1) + 1.0)\n"
    hits = [v for v in analyze_source(source, "src/repro/manifolds/demo.py")
            if v.rule == "unclamped-boundary-op"]
    assert hits == []


def test_isotropic_init_scaling_is_not_a_norm_division():
    source = "import numpy as np\n\ndef f(scale, dim):\n    return scale / np.sqrt(dim)\n"
    assert analyze_source(source, "src/repro/models/demo.py") == []


def test_perf_rules_are_warn_severity():
    violations = analyze_file(FIXTURES / "eval" / "ndarray_row_loop_bad.py")
    assert violations and all(v.severity == "warn" for v in violations)


def test_perf_rules_do_not_apply_outside_hot_paths():
    source = (
        "import numpy as np\n"
        "\n"
        "def f(n):\n"
        "    scores = np.zeros((n, 4))\n"
        "    total = 0.0\n"
        "    for row in scores:\n"
        "        total += row[0]\n"
        "    return total\n"
    )
    assert analyze_source(source, "src/repro/data/loader.py") == []


def test_manifold_rules_do_not_apply_outside_manifold_scope():
    source = (
        "def f(ball, v):\n"
        "    p = ball.expmap0(v)\n"
        "    return ball.expmap0(p)\n"
    )
    assert analyze_source(source, "src/repro/utils/demo.py") == []


def test_reference_functions_are_exempt_from_perf_rules():
    violations = analyze_file(FIXTURES / "eval" / "ndarray_row_loop_clean.py")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_reassigned_norm_with_floor_is_guarded():
    source = (
        "import numpy as np\n"
        "\n"
        "def f(x, eps):\n"
        "    norm = np.linalg.norm(x, axis=-1, keepdims=True)\n"
        "    norm = np.maximum(norm, eps)\n"
        "    return x / norm\n"
    )
    hits = [v for v in analyze_source(source, "src/repro/manifolds/demo.py")
            if v.rule == "unclamped-boundary-op"]
    assert hits == []


def test_backend_discipline_is_warn_severity():
    bad = BACKEND_FIXTURES / "src" / "repro" / "manifolds" / "backend_discipline_bad.py"
    hits = [v for v in analyze_file(bad) if v.rule == "backend-discipline"]
    assert hits and all(v.severity == "warn" for v in hits)


def test_backend_package_is_exempt_from_backend_discipline():
    violations = analyze_file(BACKEND_FIXTURES / "src" / "repro" / "backend" / "fastmath.py")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_backend_discipline_covers_scoring_and_autodiff_modules():
    source = "import numpy as np\n\ndef f(u, v):\n    return np.matmul(u, v.T)\n"
    for module in (
        "src/repro/serve/scoring.py",
        "src/repro/autodiff/ops.py",
        "src/repro/retrieval/reduction.py",
        "src/repro/retrieval/indexes.py",
        "src/repro/stream/foldin.py",
        "src/repro/stream/expand.py",
    ):
        hits = [v for v in analyze_source(source, module) if v.rule == "backend-discipline"]
        assert len(hits) == 1, module


def test_backend_discipline_ignores_unrouted_modules_and_structural_numpy():
    kernel = "import numpy as np\n\ndef f(u, v):\n    return np.matmul(u, v.T)\n"
    assert analyze_source(kernel, "src/repro/models/demo.py") == []
    structural = "import numpy as np\n\ndef f(x):\n    return np.sum(np.abs(x), axis=-1)\n"
    hits = [v for v in analyze_source(structural, "src/repro/manifolds/demo.py")
            if v.rule == "backend-discipline"]
    assert hits == []
