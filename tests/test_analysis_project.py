"""Project-pass tests: cross-module contract rules over a seeded mini-repo.

``tests/fixtures/lint_project`` is a deliberately broken snapshot of this
repo's architecture: a PR 3-era ``Module.state_dict`` that does not walk
list containers, a model registry with serving-contract violations, and a
set of reference-twin pairings in every health state.  Each rule must fire
on the seeded breakage, stay silent on the healthy counterparts, and
honour suppressions through the anchor file's comments.
"""

import ast
from pathlib import Path, PurePosixPath

import pytest

from repro.analysis import analyze_paths
from repro.analysis.project import ProjectContext, module_name_for_path

REPO_ROOT = Path(__file__).parents[1]
FIXTURE_PROJECT = REPO_ROOT / "tests" / "fixtures" / "lint_project"


@pytest.fixture(scope="module")
def findings():
    return analyze_paths([FIXTURE_PROJECT])


def _by_rule(findings, rule):
    return [v for v in findings if v.rule == rule]


class TestFrozenScoresContract:
    def test_unregistered_score_fn_id_is_flagged(self, findings):
        hits = _by_rule(findings, "frozen-scores-contract")
        messages = "\n".join(v.message for v in hits)
        assert "BadIdModel" in messages and "'cosine'" in messages

    def test_registered_model_without_frozen_scores_is_flagged(self, findings):
        hits = _by_rule(findings, "frozen-scores-contract")
        messages = "\n".join(v.message for v in hits)
        assert "NoFrozenModel" in messages and "'no-frozen'" in messages

    def test_healthy_model_and_factory_resolution_are_silent(self, findings):
        # GoodModel is registered through a return-annotated factory and
        # names a registered score fn: no finding may mention it.
        hits = _by_rule(findings, "frozen-scores-contract")
        assert len(hits) == 2
        assert all("GoodModel" not in v.message for v in hits)


class TestReferenceTwin:
    def test_signature_divergence_is_flagged(self, findings):
        hits = _by_rule(findings, "reference-twin")
        messages = "\n".join(v.message for v in hits)
        assert "blend_reference" in messages and "diverged" in messages

    def test_missing_twin_is_flagged(self, findings):
        messages = "\n".join(v.message for v in _by_rule(findings, "reference-twin"))
        assert "orphan_reference" in messages and "no fast twin" in messages

    def test_untested_twin_is_flagged(self, findings):
        messages = "\n".join(v.message for v in _by_rule(findings, "reference-twin"))
        assert "shift_reference" in messages and "never exercised" in messages

    def test_healthy_and_suppressed_twins_are_silent(self, findings):
        hits = _by_rule(findings, "reference-twin")
        assert len(hits) == 3
        messages = "\n".join(v.message for v in hits)
        assert "scale_rows_reference" not in messages
        assert all("suppressed_ops" not in v.path for v in hits)


class TestUntrackedParameter:
    def test_list_held_parameters_are_flagged_pr3_regression(self, findings):
        # The exact bug class shipped in PR 3: Parameters built in a list
        # comprehension, invisible to a state_dict that skips containers.
        hits = _by_rule(findings, "untracked-parameter")
        assert len(hits) == 1
        assert "ListParamModel" in hits[0].message
        assert "checkpoint" in hits[0].message

    def test_line_suppression_masks_the_acknowledged_container(self, findings):
        messages = "\n".join(v.message for v in _by_rule(findings, "untracked-parameter"))
        assert "FrozenListModel" not in messages

    def test_plain_parameter_attributes_are_silent(self, findings):
        messages = "\n".join(v.message for v in _by_rule(findings, "untracked-parameter"))
        assert "GoodModel" not in messages and "BadIdModel" not in messages

    def test_real_repo_indexed_state_dict_exempts_lists(self):
        # This repo's Module.state_dict walks list/tuple members with
        # indexed keys, so NGCF's list-held layer weights must NOT be
        # flagged — the rule reads the convention out of the analysed AST.
        findings = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert _by_rule(findings, "untracked-parameter") == []


class TestProjectPassPlumbing:
    def test_no_project_flag_drops_project_findings(self):
        findings = analyze_paths([FIXTURE_PROJECT], project=False)
        assert [v for v in findings if v.rule.startswith(("frozen", "reference", "untracked"))] == []

    def test_select_runs_single_project_rule(self):
        findings = analyze_paths([FIXTURE_PROJECT], select=["untracked-parameter"])
        assert {v.rule for v in findings} == {"untracked-parameter"}

    def test_ignore_drops_single_project_rule(self):
        findings = analyze_paths([FIXTURE_PROJECT], ignore=["reference-twin"])
        assert "reference-twin" not in {v.rule for v in findings}
        assert "frozen-scores-contract" in {v.rule for v in findings}

    def test_findings_are_error_severity(self, findings):
        assert findings and all(v.severity == "error" for v in findings)

    def test_rules_bail_without_contract_modules(self, tmp_path):
        # A tree with no registry/scoring/Module in view must produce no
        # contract findings — the rules never guess.
        (tmp_path / "misc.py").write_text("def f(x):\n    return x\n")
        assert analyze_paths([tmp_path]) == []


class TestProjectContext:
    @pytest.fixture(scope="class")
    def context(self):
        triples = []
        for path in sorted(FIXTURE_PROJECT.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            triples.append((PurePosixPath(path.as_posix()), source, ast.parse(source)))
        return ProjectContext.build(triples)

    def test_module_names_follow_src_convention(self):
        assert (
            module_name_for_path(PurePosixPath("src/repro/models/registry.py"))
            == "repro.models.registry"
        )

    def test_find_module_by_suffix(self, context):
        module = context.find_module("models/registry.py")
        assert module is not None and module.name == "repro.models.registry"
        assert context.find_module("does/not/exist.py") is None

    def test_resolve_class_and_mro(self, context):
        info = context.resolve_class("ListParamModel")
        assert info is not None
        assert context.is_subclass_of(info, "Module")
        assert context.find_method(info, "state_dict") is not None

    def test_self_assigns_index_collects_constructor_attributes(self, context):
        info = context.resolve_class("GoodModel")
        assert "w" in info.self_assigns
