"""Full-pipeline integration: generate → split → train → evaluate → taxonomy.

The complete workflow a downstream user runs, checked for internal
consistency on a small dataset.
"""

import numpy as np
import pytest

from repro import TaxoRec, TrainConfig, evaluate, load_preset, temporal_split
from repro.taxonomy import evaluate_recovery

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def pipeline():
    dataset = load_preset("ciao", scale=0.25, seed=42)
    split = temporal_split(dataset)
    config = TrainConfig(
        dim=32,
        tag_dim=8,
        epochs=30,
        batch_size=512,
        lr=1.0,
        margin=2.0,
        n_layers=2,
        taxo_lambda=0.05,
        seed=0,
        eval_every=5,
        patience=3,
    )
    model = TaxoRec(split.train, config)
    model.fit(split)
    return dataset, split, model


class TestPipeline:
    def test_beats_random_ranking(self, pipeline):
        dataset, split, model = pipeline
        result = evaluate(model, split, on="test")

        class Random:
            rng = np.random.default_rng(0)

            def score_users(self, users):
                return self.rng.random((len(users), dataset.n_items))

        random_result = evaluate(Random(), split, on="test")
        assert result.mean() > 1.5 * random_result.mean()

    def test_taxonomy_constructed_and_valid(self, pipeline):
        dataset, _, model = pipeline
        taxo = model.taxonomy
        assert taxo is not None
        covered = set()
        for node in taxo.nodes():
            covered.update(int(t) for t in node.members)
        assert covered == set(range(dataset.n_tags))

    def test_taxonomy_recovery_report_valid(self, pipeline):
        dataset, _, model = pipeline
        report = evaluate_recovery(model.taxonomy, dataset.tag_parent)
        assert 0.0 <= report.ancestor_f1 <= 1.0
        assert 0.0 <= report.level1_nmi <= 1.0
        assert report.n_nodes >= 1

    def test_validation_snapshot_restored(self, pipeline):
        _, split, model = pipeline
        # Early stopping keeps the best validation state; its valid score
        # must be reproducible from the restored weights.
        result = evaluate(model, split, on="valid")
        recorded = max(h.get("valid", -1) for h in model.history)
        assert result.mean() == pytest.approx(recorded, abs=1e-9)

    def test_scores_rank_test_items_above_random_items(self, pipeline):
        dataset, split, model = pipeline
        test_items = split.test.items_of_user()
        users = [u for u in range(dataset.n_users) if len(test_items[u]) >= 2][:20]
        scores = model.score_users(np.array(users))
        rng = np.random.default_rng(1)
        wins = 0
        total = 0
        for i, u in enumerate(users):
            pos = scores[i, test_items[u]].mean()
            neg = scores[i, rng.choice(dataset.n_items, 20)].mean()
            wins += pos > neg
            total += 1
        assert wins / total > 0.6
