"""Optimisers: convergence on convex objectives, manifold invariants."""

import numpy as np
import pytest

from repro.autodiff import Parameter, Tensor
from repro.manifolds import Euclidean, Lorentz, PoincareBall
from repro.optim import SGD, Adam, RiemannianSGD


def quadratic_target(param: Parameter, target: np.ndarray) -> Tensor:
    return ((param - Tensor(target)) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1)
        target = np.array([1.0, -2.0, 3.0])
        for _ in range(200):
            opt.zero_grad()
            quadratic_target(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        target = np.array([1.0, -2.0, 3.0])

        def run(momentum):
            p = Parameter(np.zeros(3))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_target(p, target).backward()
                opt.step()
            return np.linalg.norm(p.data - target)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(2) * 10.0)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p.sum() * 0.0).backward()
        opt.step()
        assert np.abs(p.data).max() < 10.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated: no movement
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.05)
        target = np.array([1.0, -2.0, 3.0])
        for _ in range(500):
            opt.zero_grad()
            quadratic_target(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ≈ lr in each coord.
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * Tensor(np.array([3.0, -7.0]))).sum().backward()
        opt.step()
        np.testing.assert_allclose(np.abs(p.data), 0.1, rtol=1e-6)


class TestRiemannianSGD:
    def test_euclidean_param_matches_sgd(self):
        p1 = Parameter(np.zeros(3), manifold=Euclidean())
        p2 = Parameter(np.zeros(3))
        r = RiemannianSGD([p1], lr=0.1, max_grad_norm=None)
        s = SGD([p2], lr=0.1)
        target = np.array([0.3, -0.4, 0.1])
        for _ in range(5):
            for p, opt in ((p1, r), (p2, s)):
                opt.zero_grad()
                quadratic_target(p, target).backward()
                opt.step()
        np.testing.assert_allclose(p1.data, p2.data, atol=1e-12)

    def test_poincare_convergence_sq_dist(self):
        ball = PoincareBall()
        target = ball.proj(np.array([[0.5, 0.1]]))
        p = Parameter(ball.proj(np.array([[-0.2, -0.6]])), manifold=ball)
        opt = RiemannianSGD([p], lr=0.2)
        for _ in range(400):
            opt.zero_grad()
            (ball.dist(p, Tensor(target)) ** 2).sum().backward()
            opt.step()
        assert ball.dist_np(p.data, target)[0] < 1e-2

    def test_poincare_stays_in_ball(self, rng):
        ball = PoincareBall()
        p = Parameter(ball.random((20, 4), rng), manifold=ball)
        target = Tensor(ball.random((20, 4), rng, scale=0.5))
        opt = RiemannianSGD([p], lr=1.0)
        for _ in range(50):
            opt.zero_grad()
            (ball.dist(p, target) ** 2).sum().backward()
            opt.step()
        assert (np.linalg.norm(p.data, axis=1) < 1.0).all()

    def test_lorentz_convergence(self):
        lor = Lorentz()
        target = lor.proj(np.array([[0.0, 0.5, 0.1]]))
        p = Parameter(lor.proj(np.array([[0.0, -0.2, -0.6]])), manifold=lor)
        opt = RiemannianSGD([p], lr=0.2)
        for _ in range(400):
            opt.zero_grad()
            lor.sq_dist(p, Tensor(target)).sum().backward()
            opt.step()
        assert lor.dist_np(p.data, target)[0] < 1e-2

    def test_lorentz_stays_on_hyperboloid(self, rng):
        lor = Lorentz()
        p = Parameter(lor.random((10, 4), rng), manifold=lor)
        target = Tensor(lor.random((10, 4), rng, scale=0.5))
        opt = RiemannianSGD([p], lr=0.5)
        for _ in range(50):
            opt.zero_grad()
            lor.sq_dist(p, target).sum().backward()
            opt.step()
        np.testing.assert_allclose(lor.inner_np(p.data, p.data), -1.0, atol=1e-8)

    def test_grad_clipping_bounds_step(self):
        p = Parameter(np.zeros((1, 3)))
        opt = RiemannianSGD([p], lr=1.0, max_grad_norm=0.1)
        opt.zero_grad()
        (p * 1e6).sum().backward()
        opt.step()
        assert np.linalg.norm(p.data) <= 0.1 + 1e-9
