"""Checkpoint/resume determinism, optimizer state, save/load round trips."""

import numpy as np
import pytest

from repro.autodiff import Parameter
from repro.data import TripletSampler
from repro.models import CML, TaxoRec, TrainConfig, create_model
from repro.optim import Adam, SGD, RiemannianSGD
from repro.train import (
    Checkpointer,
    Trainer,
    default_callbacks,
    load_checkpoint,
    save_checkpoint,
)


def _config(**overrides):
    defaults = dict(dim=8, tag_dim=2, epochs=4, batch_size=256, seed=3)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def _assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], np.asarray(b[key]), err_msg=key)


def _fit_with_checkpoints(make_model, split, tmp_path, every):
    model = make_model()
    trainer = Trainer(
        model,
        split=split,
        callbacks=default_callbacks(model.config) + [Checkpointer(tmp_path, every)],
    )
    trainer.fit()
    return model, trainer


class TestResumeDeterminism:
    """k epochs → checkpoint → resume N−k must equal N epochs straight."""

    def _roundtrip(self, make_model, split, tmp_path, ckpt_name):
        straight, straight_trainer = _fit_with_checkpoints(make_model, split, tmp_path, every=2)
        resumed_model = make_model()
        resumed_trainer = Trainer(resumed_model, split=split)
        resumed_trainer.fit(resume=tmp_path / ckpt_name)
        _assert_states_equal(straight.state_dict(), resumed_model.state_dict())
        assert straight.history == resumed_model.history
        assert straight_trainer.state.best_score == resumed_trainer.state.best_score
        assert straight_trainer.state.best_epoch == resumed_trainer.state.best_epoch
        _assert_states_equal(
            straight_trainer.optimizer.state_dict(), resumed_trainer.optimizer.state_dict()
        )

    def test_cml_adam(self, tiny_split, tmp_path):
        # Adam carries moment buffers + step count: full optimizer restore.
        make = lambda: CML(tiny_split.train, _config(eval_every=2, patience=5))
        self._roundtrip(make, tiny_split, tmp_path, "checkpoint_0001.npz")

    def test_taxorec_rsgd_with_taxonomy(self, tiny_split, tmp_path):
        # The taxonomy rebuilt at epoch 1 (warmup=1, every 2) must survive
        # the checkpoint, and the epoch-3 rebuild must consume the restored
        # RNG stream identically.
        make = lambda: TaxoRec(
            tiny_split.train,
            _config(dim=16, tag_dim=4, eval_every=2, patience=5, taxo_rebuild_every=2),
            taxo_warmup=1,
        )
        self._roundtrip(make, tiny_split, tmp_path, "checkpoint_0001.npz")

    def test_resume_skips_completed_training(self, tiny_split, tmp_path):
        make = lambda: CML(tiny_split.train, _config(epochs=2))
        _fit_with_checkpoints(make, tiny_split, tmp_path, every=2)
        resumed = make()
        trainer = Trainer(resumed, split=tiny_split)
        trainer.fit(resume=tmp_path / "checkpoint_0001.npz")
        assert trainer.state.epoch == 2
        assert len(resumed.history) == 2


class TestCheckpointFile:
    def test_checkpoint_contents(self, tiny_split, tmp_path):
        model = CML(tiny_split.train, _config(eval_every=2, patience=5))
        trainer = Trainer(model, split=tiny_split)
        trainer.fit()
        path = save_checkpoint(tmp_path / "ckpt.npz", trainer, run_info={"model": "CML"})
        ckpt = load_checkpoint(path)
        assert ckpt.meta["schema"] == "repro.ckpt/v1"
        assert ckpt.meta["epoch"] == 4
        assert ckpt.meta["run"] == {"model": "CML"}
        assert len(ckpt.meta["history"]) == 4
        _assert_states_equal(ckpt.model_state, model.state_dict())
        assert "t" in ckpt.optim_state  # Adam step counter
        # The best snapshot rides along (eval ran at epochs 1 and 3).
        assert set(ckpt.best_state) == set(model.state_dict())

    def test_rejects_wrong_schema(self, tmp_path):
        import json

        np.savez(tmp_path / "bad.npz", __meta__=np.asarray(json.dumps({"schema": "nope"})))
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(tmp_path / "bad.npz")

    def test_rng_state_round_trips(self, tiny_split, tmp_path):
        model = CML(tiny_split.train, _config(epochs=1))
        trainer = Trainer(model, split=tiny_split)
        trainer.fit()
        save_checkpoint(tmp_path / "ckpt.npz", trainer)
        expected = model.rng.integers(0, 2**31, size=8)  # advances the stream
        ckpt = load_checkpoint(tmp_path / "ckpt.npz")
        model.rng.bit_generator.state = ckpt.meta["model_rng"]
        np.testing.assert_array_equal(model.rng.integers(0, 2**31, size=8), expected)


class TestSamplerRngCapture:
    def test_negative_stream_resumes_identically(self, tiny_split):
        sampler = TripletSampler(tiny_split.train, seed=11)
        users = tiny_split.train.user_ids[:64]
        sampler.sample_negatives(users)  # advance
        state = sampler.get_rng_state()
        expected = [sampler.sample_negatives(users) for _ in range(3)]
        sampler.set_rng_state(state)
        replayed = [sampler.sample_negatives(users) for _ in range(3)]
        for a, b in zip(expected, replayed):
            np.testing.assert_array_equal(a, b)


class TestOptimizerStateDicts:
    def _params(self):
        rng = np.random.default_rng(0)
        return [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=(2,)))]

    def _step(self, opt, params, rng):
        opt.zero_grad()
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        opt.step()

    @pytest.mark.parametrize("factory", [
        lambda ps: Adam(ps, lr=1e-2),
        lambda ps: SGD(ps, lr=1e-2, momentum=0.9),
    ])
    def test_resume_matches_uninterrupted(self, factory):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        params_a, params_b = self._params(), self._params()
        opt_a, opt_b = factory(params_a), factory(params_b)
        for _ in range(3):
            self._step(opt_a, params_a, rng_a)
        # Interrupt b after 2 steps, round-trip its state, then continue.
        for _ in range(2):
            self._step(opt_b, params_b, rng_b)
        state = {k: v.copy() for k, v in opt_b.state_dict().items()}
        opt_c = factory(params_b)
        opt_c.load_state_dict(state)
        self._step(opt_c, params_b, rng_b)
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_rsgd_is_stateless(self):
        params = self._params()
        opt = RiemannianSGD(params, lr=1e-2)
        assert opt.state_dict() == {}
        opt.load_state_dict({})  # no-op

    def test_shape_mismatch_rejected(self):
        params = self._params()
        opt = Adam(params, lr=1e-2)
        state = opt.state_dict()
        state["m.0"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            opt.load_state_dict(state)


class TestSaveLoadRoundTrip:
    """--save → load_state_dict into a fresh model → bit-identical scores."""

    @pytest.mark.parametrize("name", ["CML", "TaxoRec", "NGCF"])
    def test_scores_bit_identical(self, tiny_split, tmp_path, name):
        config = _config(dim=16, tag_dim=4, epochs=2)
        model = create_model(name, tiny_split.train, config)
        model.fit(tiny_split)
        path = tmp_path / "weights.npz"
        np.savez(path, **model.state_dict())
        fresh = create_model(name, tiny_split.train, config)
        with np.load(path) as npz:
            fresh.load_state_dict({k: npz[k] for k in npz.files})
        users = np.arange(tiny_split.train.n_users)
        np.testing.assert_array_equal(fresh.score_users(users), model.score_users(users))
