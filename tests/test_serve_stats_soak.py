"""Telemetry invariants under concurrent load: a hypothesis soak.

The :meth:`RecommenderService.stats` snapshot is monitoring surface — if
its counters drift under concurrency (lost increments, hit/miss
mismatches, latency counts diverging from request counts), dashboards
lie silently.  Hypothesis generates randomized concurrent workloads
(recommend / score / invalidate mixes sprayed over racing threads) and
afterwards every bookkeeping identity must hold *exactly*: the counters
sit behind the service lock, so concurrency must never lose an update.

Slow tier: each example spins real threads; run with ``-m slow`` (CI's
soak job) or a plain full ``pytest``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.serve import RecommenderService, export_payload

pytestmark = pytest.mark.slow

N_THREADS = 4

op_st = st.one_of(
    st.tuples(st.just("recommend"), st.integers(0, 59), st.sampled_from([1, 5, 10])),
    st.tuples(st.just("score"), st.integers(0, 59), st.just(0)),
    st.tuples(st.just("invalidate"), st.just(0), st.just(0)),
)


@pytest.fixture(scope="module")
def artifact_path(tiny_split, tmp_path_factory):
    rng = np.random.default_rng(51)
    train = tiny_split.train
    path = tmp_path_factory.mktemp("soak") / "dense.npz"
    export_payload(
        path,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="Dense",
    )
    return path


def _run_concurrently(service, ops):
    """Spray ``ops`` round-robin over racing threads; collect any exceptions."""
    errors = []
    barrier = threading.Barrier(N_THREADS)
    chunks = [ops[i::N_THREADS] for i in range(N_THREADS)]

    def worker(chunk):
        barrier.wait()
        for op, user, k in chunk:
            try:
                if op == "recommend":
                    service.recommend(user, k)
                elif op == "score":
                    service.score(user, [0, 1, 2])
                else:
                    service.invalidate()
            except Exception as exc:  # noqa: BLE001 - surfaced by the assert
                errors.append((op, user, exc))

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


@given(ops=st.lists(op_st, min_size=8, max_size=80))
@settings(max_examples=20, deadline=None)
def test_stats_identities_hold_after_concurrent_storm(artifact_path, ops):
    service = RecommenderService(artifact_path, cache_size=32)
    errors = _run_concurrently(service, ops)
    assert errors == []

    stats = service.stats()
    n_recommend = sum(1 for op, *_ in ops if op == "recommend")
    n_score = sum(1 for op, *_ in ops if op == "score")
    n_invalidate = sum(1 for op, *_ in ops if op == "invalidate")

    # No lost increments: the counters match the workload exactly.
    assert stats["requests"]["recommend"] == n_recommend
    assert stats["requests"]["score"] == n_score
    assert stats["requests"]["total"] == n_recommend + n_score

    # Every request was timed exactly once.
    assert stats["latency"]["count"] == stats["requests"]["total"]
    assert stats["latency"]["total_seconds"] >= 0.0
    assert stats["latency"]["max_seconds"] <= stats["latency"]["total_seconds"] + 1e-12
    if stats["latency"]["count"]:
        assert stats["latency"]["mean_seconds"] == pytest.approx(
            stats["latency"]["total_seconds"] / stats["latency"]["count"]
        )

    # Cache accounting: every recommend is exactly one hit or one miss,
    # the cache never exceeds capacity, and invalidations are all counted.
    cache = stats["cache"]
    assert cache["hits"] + cache["misses"] == n_recommend
    assert cache["size"] <= cache["capacity"] == 32
    # Every resident entry traces back to a miss that was not evicted
    # (invalidations only shrink the cache further).
    assert cache["size"] <= cache["misses"] - cache["evictions"]
    assert cache["invalidations"] == n_invalidate
    assert min(cache[key] for key in ("hits", "misses", "evictions")) >= 0

    # Artifact telemetry is quiescent: no swaps happened.
    assert stats["artifact"] == {"version": 1, "swaps": 0}
    assert stats["uptime_seconds"] > 0.0
    assert stats["throughput_rps"] >= 0.0


@given(
    batches=st.lists(
        st.lists(st.integers(0, 59), min_size=1, max_size=12), min_size=1, max_size=10
    )
)
@settings(max_examples=15, deadline=None)
def test_batch_accounting_under_concurrency(artifact_path, batches):
    """``recommend_batch`` counts every row, times every row, caches uniques."""
    service = RecommenderService(artifact_path, cache_size=256)
    errors = []
    barrier = threading.Barrier(min(N_THREADS, len(batches)))
    chunks = [batches[i::N_THREADS] for i in range(min(N_THREADS, len(batches)))]

    def worker(chunk):
        barrier.wait()
        for users in chunk:
            try:
                items, scores = service.recommend_batch(users, k=5)
                assert items.shape == (len(users), 5)
                assert scores.shape == (len(users), 5)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    stats = service.stats()
    total_rows = sum(len(users) for users in batches)
    unique_per_batch = sum(len(set(users)) for users in batches)
    assert stats["requests"]["recommend"] == total_rows
    assert stats["latency"]["count"] == total_rows
    # Cache lookups happen once per *unique* user per batch.
    cache = stats["cache"]
    assert cache["hits"] + cache["misses"] == unique_per_batch
    # Distinct users across the whole workload bounds the cache content.
    distinct = len({u for users in batches for u in users})
    assert cache["size"] <= distinct


def test_stats_swap_telemetry_under_load(artifact_path, tiny_split, tmp_path):
    """Version/swap counters stay exact while requests race a hot swap."""
    rng = np.random.default_rng(61)
    train = tiny_split.train
    other = tmp_path / "other.npz"
    export_payload(
        other,
        score_fn="dense",
        arrays={"scores": rng.random((train.n_users, train.n_items))},
        train=train,
        model_name="DenseV2",
    )
    service = RecommenderService(artifact_path, cache_size=64)
    stop = threading.Event()
    errors = []

    def hammer():
        user = 0
        while not stop.is_set():
            try:
                service.recommend(user % service.n_users, 5)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            user += 1

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    for thread in threads:
        thread.start()
    for expected_version in (2, 3, 4):
        assert service.swap_artifact(other) == expected_version
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert errors == []
    stats = service.stats()
    assert stats["artifact"] == {"version": 4, "swaps": 3}
    assert stats["requests"]["recommend"] == stats["latency"]["count"]
    assert stats["cache"]["hits"] + stats["cache"]["misses"] == stats["requests"]["recommend"]
