"""Fixture: the healthy twin of ``backend_discipline_bad`` — zero findings.

Kernel calls go through the seam, the reference twin keeps its
deliberate direct-numpy body, and structural numpy (searchsorted,
union1d, linalg.solve) stays allowed — delta bookkeeping and the final
dense solve are not kernel work.
"""

import numpy as np

from repro.backend import get_backend


def foldin_gram_np(design, targets):
    xp = get_backend()
    gram = xp.matmul(design.T, design)
    return gram, xp.matmul(design.T, targets)


def tangent_log_np(spatial, floor):
    xp = get_backend()
    norm = np.maximum(xp.norm(spatial, axis=-1, keepdims=True), floor)
    return xp.arcsinh(norm) * spatial / norm


def tangent_log_reference_np(spatial, floor):
    # Reference twins are backend-independent on purpose: direct numpy is
    # the fixed point the differential suite compares every solver to.
    norm = np.maximum(np.linalg.norm(spatial, axis=-1, keepdims=True), floor)
    return np.arcsinh(norm) * spatial / norm


def merge_seen_rows_np(baseline, delta, gram, rhs):
    merged = np.union1d(baseline, delta)
    position = np.searchsorted(merged, delta)
    return merged, position, np.linalg.solve(gram, rhs)
