"""Fixture: every function here trips ``backend-discipline`` (3 findings).

``repro.stream.*`` is a routed prefix — fold-in gram matrices and the
tangent-map transcendentals must go through the compute seam.  Each call
is numerically guarded so the error-severity numerics rules stay silent;
the only offence is bypassing the backend.
"""

import numpy as np


def foldin_gram_np(design, targets):
    gram = np.matmul(design.T, design)
    return gram, design.T @ targets


def tangent_log_np(spatial, floor):
    norm = np.maximum(np.linalg.norm(spatial, axis=-1, keepdims=True), floor)
    return np.arcsinh(norm) * spatial / norm
