"""Fixture: ``repro.backend.*`` is exempt — backends ARE the direct numpy."""

import numpy as np


def cosh_chain(z):
    return np.cosh(np.sqrt(np.maximum(z, 1.0)))
