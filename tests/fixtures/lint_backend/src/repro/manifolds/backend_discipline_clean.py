"""Fixture: the healthy twin of ``backend_discipline_bad`` — zero findings.

Kernel calls go through the seam, reference twins keep their deliberate
direct-numpy bodies, and structural numpy (sum/concatenate) stays allowed.
"""

import numpy as np

from repro.backend import get_backend


def dist_np(u, v):
    return get_backend().poincare_dist_matrix(u, v)


def scores_np(u, v):
    return get_backend().matmul(u, v.T)


def row_norms_np(x):
    return get_backend().norm(x, axis=-1, keepdims=True)


def dist_matrix_reference_np(u, v):
    # Reference twins are backend-independent on purpose: direct numpy here
    # is the fixed point the differential suites compare every backend to.
    arg = np.maximum(u @ v.T, 1.0)
    return np.arccosh(arg)


def interleave_np(u, v):
    stacked = np.concatenate([u, v], axis=0)
    return np.sum(stacked, axis=0)
