"""Fixture: every function here trips ``backend-discipline`` (3 findings).

Each call is numerically guarded so the error-severity numerics rules stay
silent — the only offence is bypassing the compute-backend seam.
"""

import numpy as np


def dist_np(u, v):
    arg = np.maximum(u @ v.T, 1.0)
    return np.arccosh(arg)


def scores_np(u, v):
    return np.matmul(u, v.T)


def row_norms_np(x):
    return np.linalg.norm(x, axis=-1, keepdims=True)
