"""Model registry of the fixture project."""

from .models import BadIdModel, GoodModel, ListParamModel, NoFrozenModel


def _good() -> GoodModel:
    return GoodModel(4)


MODEL_REGISTRY = {
    "good": _good,
    "bad-id": BadIdModel,
    "no-frozen": NoFrozenModel,
    "list-params": ListParamModel,
}
