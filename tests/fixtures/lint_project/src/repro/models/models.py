"""Fixture models: one healthy, three violating a cross-module contract."""

from ..autodiff.parameter import Module, Parameter


class GoodModel(Module):
    def __init__(self, dim):
        self.w = Parameter([0.0] * dim)

    def frozen_scores(self):
        return {"score_fn": "dot", "arrays": {"user": self.w.data, "item": self.w.data}}


class BadIdModel(Module):
    """frozen_scores names a score fn the scoring registry never registers."""

    def __init__(self):
        self.w = Parameter([0.0])

    def frozen_scores(self):
        return {"score_fn": "cosine", "arrays": {}}


class NoFrozenModel(Module):
    """Registered for serving but defines no frozen_scores at all."""

    def __init__(self):
        self.w = Parameter([0.0])


class ListParamModel(Module):
    """Holds Parameters in a list; this project's state_dict skips lists."""

    def __init__(self, n):
        self.layers = [Parameter([0.0]) for _ in range(n)]

    def frozen_scores(self):
        return {"score_fn": "dot", "arrays": {}}


class FrozenListModel(Module):
    """Same hazard, explicitly acknowledged with a line suppression."""

    def __init__(self):
        self.pinned = (Parameter([0.0]),)  # repro-lint: disable=untracked-parameter

    def frozen_scores(self):
        return {"score_fn": "dot", "arrays": {}}
