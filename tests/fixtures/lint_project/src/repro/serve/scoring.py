"""Score-fn registry of the fixture project: only ``dot`` exists."""

SCORE_FNS = {}


def _register(name, arrays):
    def deco(fn):
        SCORE_FNS[name] = (fn, arrays)
        return fn

    return deco


@_register("dot", ("user", "item"))
def _dot(arrays, user_id):
    user = arrays["user"][user_id]
    return [sum(u * v for u, v in zip(user, item)) for item in arrays["item"]]
