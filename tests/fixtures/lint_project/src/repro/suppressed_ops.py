"""A dangling reference twin acknowledged by a file-level suppression."""

# repro-lint: disable=reference-twin


def lonely_reference(x):
    return [v for v in x]
