"""PR 3-era snapshot of the parameter container: state_dict walks
``Parameter`` and ``Module`` attributes but NOT list/tuple containers —
the exact code state in which list-held parameters silently vanished
from checkpoints."""


class Parameter:
    def __init__(self, data):
        self.data = data


class Module:
    def state_dict(self):
        out = {}
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                out[name] = value.data
            elif isinstance(value, Module):
                for key, sub in value.state_dict().items():
                    out[f"{name}.{key}"] = sub
        return out
