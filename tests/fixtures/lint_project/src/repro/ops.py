"""Fixture vectorized/reference function pairs in every health state."""


def scale_rows(m, f):
    return [[v * fi for fi in f] for row in m for v in row]


def scale_rows_reference(m, f):
    out = []
    for row in m:
        out.append([v * fi for v, fi in zip(row, f)])
    return out


def blend(a, weight, b):
    return [weight * x + (1.0 - weight) * y for x, y in zip(a, b)]


def blend_reference(a, b, weight):
    # Parameter order diverged from the fast twin: (a, weight, b) vs (a, b, weight).
    return [weight * x + (1.0 - weight) * y for x, y in zip(a, b)]


def orphan_reference(x):
    # No fast twin exists anywhere in this scope.
    return [v * 2.0 for v in x]


def shift(x, d):
    return [v + d for v in x]


def shift_reference(x, d):
    # Twin exists and matches, but the differential suite never names it.
    return [v + d for v in x]
