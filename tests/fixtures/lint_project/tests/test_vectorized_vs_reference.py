"""Differential suite of the fixture project.

Names the scale-rows and blend reference twins; the shift twin is
deliberately absent and therefore reported as untested.
"""

from repro.ops import blend, blend_reference, scale_rows, scale_rows_reference


def test_scale_rows_matches_reference():
    m = [[1.0, 2.0], [3.0, 4.0]]
    f = [0.5, 2.0]
    assert scale_rows(m, f) is not None
    assert scale_rows_reference(m, f) is not None


def test_blend_matches_reference():
    a, b = [1.0, 0.0], [0.0, 1.0]
    assert blend(a, 0.25, b) == blend_reference(a, b, 0.25)
