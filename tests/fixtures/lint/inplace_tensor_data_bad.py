"""Fixture: in-place writes to ``.data`` outside the optimisers."""


def corrupt(tensor, values):
    tensor.data[...] = values
    tensor.data += 1.0
