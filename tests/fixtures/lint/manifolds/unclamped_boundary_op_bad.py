"""Fixture: every function here trips ``unclamped-boundary-op``."""

import numpy as np


def unguarded_sqrt(sq):
    return np.sqrt(1.0 - sq)


def unguarded_arccosh(inner):
    return np.arccosh(-inner)


def unguarded_norm_division(x):
    norm = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / norm


def unguarded_tensor_log(p):
    return (1.0 - p).log()
