"""Clean twin: every chart transition alternates expmap and logmap."""


def roundtrip(ball, v):
    p = ball.expmap0(v)
    u = ball.logmap0(p)
    return ball.expmap0(u)


def branch_merge(ball, v, flip):
    if flip:
        p = ball.expmap0(v)
    else:
        p = ball.proj(v)
    # Both branches leave p as a point; logmap of a point is fine.
    return ball.logmap0(p)


def loop_carried(ball, z, n):
    for _ in range(n):
        z = ball.logmap0(z)  # loop-carried names carry no tag: not flagged
    return z
