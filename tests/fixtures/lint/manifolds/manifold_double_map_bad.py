"""Deliberately violating fixture: expmap/logmap applied twice in a row."""


def double_exp(ball, v):
    p = ball.expmap0(v)
    q = ball.expmap0(p)  # expmap of a value already on the manifold
    return q


def double_log(ball, p):
    u = ball.logmap0(p)
    w = ball.logmap0(u)  # logmap of a tangent vector
    return w
