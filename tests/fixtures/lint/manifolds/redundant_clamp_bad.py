"""Deliberately violating fixture: clamps stacked directly on clamps."""

import numpy as np


def overclip(x, lo, hi):
    return np.clip(np.clip(x, lo, hi), lo, hi)  # outer clip is dead


def double_clamp(x):
    return x.clamp(-1.0, 1.0).clamp(-1.0, 1.0)  # second clamp is dead
