"""Clean twin: values stay in one chart, or a tag is unknown."""


def same_chart(lorentz, v, w):
    p = lorentz.expmap0(v)
    q = lorentz.expmap0(w)
    return p + q


def untagged_operand(ball, v, offset):
    p = ball.expmap0(v)
    return p + offset  # offset carries no tag: never flagged
