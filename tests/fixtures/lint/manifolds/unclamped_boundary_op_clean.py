"""Fixture: the guarded twins of ``unclamped_boundary_op_bad.py``."""

import numpy as np

from repro.manifolds.constants import EPS, MIN_NORM


def guarded_sqrt(sq):
    return np.sqrt(np.maximum(1.0 - sq, 0.0))


def guarded_arccosh(inner):
    return np.arccosh(np.maximum(-inner, 1.0))


def guarded_norm_division(x):
    norm = np.maximum(np.linalg.norm(x, axis=-1, keepdims=True), MIN_NORM)
    return x / norm


def guarded_tensor_log(p):
    return (1.0 - p).clamp(min_value=EPS).log()
