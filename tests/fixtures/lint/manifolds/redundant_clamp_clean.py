"""Clean twin: a floor composed with a ceiling is a range clamp, not waste."""

import numpy as np


def range_clamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


def single_clip(x, lo, hi):
    y = np.clip(x, lo, hi)
    return y
