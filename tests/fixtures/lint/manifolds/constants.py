"""Fixture: tiny literals are sanctioned inside manifolds/constants.py."""

EPS = 1e-7
MIN_NORM = 1e-15
