"""Deliberately violating fixture: Lorentz and Poincare charts combined."""


def chart_soup(lorentz, ball, v):
    p = lorentz.expmap0(v)
    q = ball.expmap0(v)
    return p + q  # hyperboloid coordinates added to ball coordinates
