"""Fixture: build a fresh tensor instead of mutating the tape's storage."""


def rebuild(tensor_cls, values):
    return tensor_cls(values)
