"""Clean twin: vectorized reductions and batched (chunked) iteration."""

import numpy as np


def score_all(n):
    scores = np.zeros((n, 4))
    return scores.sum()


def batched(n):
    scores = np.ones((n, 3))
    out = 0.0
    for start in range(0, n, 64):  # chunked range is the fast idiom
        out += scores[start : start + 64].sum()
    return out


def score_all_reference(n):
    # Reference twins are deliberately scalar; the rule exempts them.
    scores = np.zeros((n, 4))
    total = 0.0
    for i in range(len(scores)):
        total += scores[i].sum()
    return total
