"""Deliberately violating fixture: adjacency rebuilt every iteration."""

import numpy as np


def build_adjacency(edges, n):
    return np.zeros((n, n))


def propagate(edges, x, n_layers):
    out = x
    for _ in range(n_layers):
        adj = build_adjacency(edges, 8)  # identical work every iteration
        out = adj @ out
    return out
