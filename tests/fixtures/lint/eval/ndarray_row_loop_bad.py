"""Deliberately violating fixture: Python loops over ndarray rows."""

import numpy as np


def score_all(n):
    scores = np.zeros((n, 4))
    total = 0.0
    for i in range(len(scores)):  # scalar loop over rows
        total += scores[i].sum()
    for row in scores:  # row-wise iteration
        total += row[0]
    return total


def shape_loop(n):
    scores = np.ones((n, 3))
    out = []
    for i in range(scores.shape[0]):  # scalar loop over rows
        out.append(scores[i])
    return out
