"""Clean twin: the builder is hoisted, or its arguments vary per iteration."""

import numpy as np


def build_adjacency(edges, n):
    return np.zeros((n, n))


def propagate(edges, x, n_layers):
    adj = build_adjacency(edges, 8)  # hoisted out of the loop
    out = x
    for _ in range(n_layers):
        out = adj @ out
    return out


def per_graph(edges_list):
    outs = []
    for edges in edges_list:
        outs.append(build_adjacency(edges, 8))  # argument varies: fine
    return outs
