"""Deliberately violating fixture: suppressions naming unknown rules."""

# repro-lint: disable=unknown-rule

x = 1  # repro-lint: disable=not-a-rule
