"""Fixture: mutable default arguments shared across calls."""


def append_to(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(counts={}):
    return counts
