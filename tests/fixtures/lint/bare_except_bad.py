"""Fixture: a bare except clause."""


def read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:  # noqa: E722 (the fixture exists to trip repro-lint)
        return None
