"""Fixture: the same write is sanctioned under an ``optim/`` path."""


def apply_update(param, step):
    param.data[...] = param.data - step
