"""Fixture: randomness flows through an explicit Generator."""

import numpy as np


def sample(shape, rng: np.random.Generator):
    return rng.normal(size=shape)


def make_rng(seed):
    return np.random.default_rng(seed)
