"""Fixture: print() inside library code."""


def report(metrics):
    print(metrics)
