"""Fixture: None defaults created inside the function."""


def append_to(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def tally(counts=None):
    return counts if counts is not None else {}
