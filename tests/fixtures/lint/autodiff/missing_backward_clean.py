"""Fixture: ops that pair every forward with a gradient."""

import numpy as np

from repro.autodiff import Tensor


class HalfOp:
    def forward(self, x):
        return x * 0.5

    def backward(self, g):
        return g * 0.5


def relu(x):
    def vjp(g):
        return (g * (x.data > 0),)

    return Tensor._from_op(np.maximum(x.data, 0.0), (x,), vjp)
