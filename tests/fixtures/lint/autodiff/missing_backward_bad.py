"""Fixture: ops that never register a gradient."""

import numpy as np

from repro.autodiff import Tensor


class HalfOp:
    def forward(self, x):
        return x * 0.5


def detached_relu(x):
    return Tensor._from_op(np.maximum(x.data, 0.0), (x,), None)
