"""Fixture: library code reports through the shared logger."""

from repro.utils.logging import get_logger


def report(metrics):
    get_logger(__name__).info("metrics: %s", metrics)
