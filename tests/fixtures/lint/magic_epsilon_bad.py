"""Fixture: ad-hoc epsilon literals outside the constants module."""


def floor_denominator(x):
    eps = 1e-12
    return x + eps


SHELL_RADIUS = 1.0 - 1e-7
