"""Clean twin: every suppression names a real rule (and masks a finding)."""

# repro-lint: disable=print-call

print("suppressed by the file-level comment above")
