"""Fixture: centralised constants and signature defaults are both fine."""

from repro.manifolds.constants import DIV_EPS


def floor_denominator(x, eps: float = 1e-9):  # signature defaults are exempt
    return x + max(eps, DIV_EPS)


SHELL_RADIUS = 1.0 - DIV_EPS
