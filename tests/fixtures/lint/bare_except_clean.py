"""Fixture: a typed except clause."""


def read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:
        return None
