"""Fixture: print() is sanctioned in cli.py / __main__.py."""


def main():
    print("command line front ends may print")
