"""Fixture: calls into the process-global numpy RNG."""

import numpy as np


def sample(shape):
    np.random.seed(0)
    return np.random.rand(*shape)
