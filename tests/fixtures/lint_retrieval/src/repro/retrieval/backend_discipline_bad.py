"""Fixture: every function here trips ``backend-discipline`` (3 findings).

``repro.retrieval.*`` is a routed prefix — reduced-score matmuls and the
monotone ``finish`` transcendentals must go through the compute seam.
Each call is numerically guarded so the error-severity numerics rules
stay silent; the only offence is bypassing the backend.
"""

import numpy as np


def reduced_scores_np(queries, item_vectors, item_bias):
    return np.matmul(queries, item_vectors.T) + item_bias


def finish_lorentz_np(reduced):
    arg = np.maximum(-reduced, 1.0)
    d = np.arccosh(arg)
    return -(d * d)


def bucket_norms_np(item_vectors):
    return np.linalg.norm(item_vectors, axis=1)
