"""Fixture: the healthy twin of ``backend_discipline_bad`` — zero findings.

Kernel calls go through the seam, the reference twin keeps its
deliberate direct-numpy body, and structural numpy (argpartition,
lexsort, isin) stays allowed — candidate selection is bookkeeping, not
kernel work.
"""

import numpy as np

from repro.backend import get_backend


def reduced_scores_np(queries, item_vectors, item_bias):
    return get_backend().matmul(queries, item_vectors.T) + item_bias


def finish_lorentz_np(reduced):
    arg = np.maximum(-reduced, 1.0)
    d = get_backend().arccosh(arg)
    return -(d * d)


def bucket_norms_np(item_vectors):
    return get_backend().norm(item_vectors, axis=1)


def finish_lorentz_reference_np(reduced):
    # Reference twins are backend-independent on purpose: direct numpy is
    # the fixed point the recall/parity suites compare every index to.
    d = np.arccosh(np.maximum(-reduced, 1.0))
    return -(d * d)


def select_candidates_np(values, ids, budget):
    keep = np.argpartition(-values, min(budget, len(values)) - 1)[:budget]
    order = np.lexsort((ids[keep], -values[keep]))
    return keep[order]
