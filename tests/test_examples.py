"""Examples stay runnable: they parse, expose main(), and use real APIs."""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_main(self, path):
        tree = ast.parse(path.read_text())
        funcs = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in funcs

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a usage docstring"

    def test_imports_resolve(self, path):
        """Every repro.* import in the example must exist in the package."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
