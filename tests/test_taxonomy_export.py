"""Taxonomy export: JSON round trips and networkx conversion."""

import networkx as nx
import numpy as np
import pytest

from repro.taxonomy import (
    Taxonomy,
    TaxonomyNode,
    from_dict,
    load_json,
    save_json,
    to_dict,
    to_networkx,
)


@pytest.fixture()
def taxo():
    child_a = TaxonomyNode(members=np.array([1, 2]), scores=np.array([0.5, 0.6]), level=1)
    child_b = TaxonomyNode(members=np.array([3, 4]), scores=np.array([0.7, 0.8]), level=1)
    root = TaxonomyNode(
        members=np.arange(5),
        general_tags=np.array([0]),
        scores=np.ones(5),
        level=0,
        children=[child_a, child_b],
    )
    return Taxonomy(root, n_tags=5)


class TestJsonRoundTrip:
    def test_dict_roundtrip(self, taxo):
        rebuilt = from_dict(to_dict(taxo))
        assert rebuilt.n_tags == 5
        assert rebuilt.render() == taxo.render()

    def test_file_roundtrip(self, taxo, tmp_path):
        path = tmp_path / "taxo.json"
        save_json(taxo, path)
        rebuilt = load_json(path)
        assert rebuilt.ancestor_pairs() == taxo.ancestor_pairs()

    def test_tag_names_embedded(self, taxo):
        names = [f"t{i}" for i in range(5)]
        data = to_dict(taxo, tag_names=names)
        assert data["root"]["general_names"] == ["t0"]

    def test_scores_preserved(self, taxo):
        rebuilt = from_dict(to_dict(taxo))
        child = rebuilt.root.children[0]
        np.testing.assert_allclose(child.scores, [0.5, 0.6])


class TestNetworkx:
    def test_structure(self, taxo):
        graph = to_networkx(taxo)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert nx.is_arborescence(graph)

    def test_node_attributes(self, taxo):
        graph = to_networkx(taxo, tag_names=[f"t{i}" for i in range(5)])
        root = [n for n, d in graph.in_degree() if d == 0][0]
        assert graph.nodes[root]["size"] == 5
        assert graph.nodes[root]["general"] == ["t0"]

    def test_levels_monotone_along_edges(self, taxo):
        graph = to_networkx(taxo)
        for a, b in graph.edges:
            assert graph.nodes[b]["level"] == graph.nodes[a]["level"] + 1
